type value = V0 | V1 | VX

type conduct = On | Off | Maybe

let simulate (net : Extractor.netlist) ~vdd ~gnd ~inputs =
  let n = net.Extractor.node_count in
  let values = Array.make n VX in
  let fixed = Array.make n false in
  let fix node v =
    if node >= 0 && node < n then begin
      values.(node) <- v;
      fixed.(node) <- true
    end
  in
  fix vdd V1;
  fix gnd V0;
  List.iter (fun (node, v) -> fix node v) inputs;
  (* adjacency through devices; device state recomputed each pass *)
  let device_state (d : Extractor.device) =
    if d.Extractor.depletion then On
    else if d.Extractor.gate < 0 then Maybe
    else
      match values.(d.Extractor.gate) with
      | V1 -> On
      | V0 -> Off
      | VX -> Maybe
  in
  (* reachable ~seed ~strict: nodes connected to [seed] through devices
     that are On (strict) or On/Maybe (not strict); conduction does not
     pass THROUGH fixed nodes *)
  let reachable ~seed ~strict =
    let seen = Array.make n false in
    if seed >= 0 && seed < n then seen.(seed) <- true;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (d : Extractor.device) ->
          let ok =
            match device_state d with
            | On -> true
            | Maybe -> not strict
            | Off -> false
          in
          if ok then
            (* a conducting channel joins all its terminals pairwise *)
            let ts = d.Extractor.terminals in
            let any_seen =
              List.exists (fun t -> t >= 0 && seen.(t)) ts
            in
            if any_seen then
              List.iter
                (fun t ->
                  if
                    t >= 0 && (not seen.(t))
                    && ((not fixed.(t)) || t = seed)
                  then begin
                    (* we may arrive AT a fixed node but not pass through;
                       arriving at a fixed node is only meaningful for
                       seeds, so skip marking other fixed nodes *)
                    if not fixed.(t) then begin
                      seen.(t) <- true;
                      changed := true
                    end
                  end)
                ts)
        net.Extractor.devices
    done;
    seen
  in
  let rec settle budget =
    if budget = 0 then ()
    else begin
      let set0 = reachable ~seed:gnd ~strict:true in
      let set0x = reachable ~seed:gnd ~strict:false in
      let set1 = reachable ~seed:vdd ~strict:true in
      let set1x = reachable ~seed:vdd ~strict:false in
      let changed = ref false in
      for node = 0 to n - 1 do
        if not fixed.(node) then begin
          let v =
            if set0.(node) then V0
            else if set0x.(node) then VX
            else if set1.(node) then V1
            else if set1x.(node) then VX
            else VX
          in
          if values.(node) <> v then begin
            values.(node) <- v;
            changed := true
          end
        end
      done;
      if !changed then settle (budget - 1)
    end
  in
  settle (n + List.length net.Extractor.devices + 4);
  values

let verify_logic cell ~inputs ~outputs spec =
  let net = Extractor.extract cell in
  let vdd = Extractor.node_of net "vdd" in
  let gnd = Extractor.node_of net "gnd" in
  let in_nodes = List.map (Extractor.node_of net) inputs in
  let out_nodes = List.map (Extractor.node_of net) outputs in
  let k = List.length inputs in
  let ok = ref true in
  for v = 0 to (1 lsl k) - 1 do
    let bits = Array.init k (fun i -> v land (1 lsl i) <> 0) in
    let drive =
      List.mapi
        (fun i node -> (node, if bits.(i) then V1 else V0))
        in_nodes
    in
    let values = simulate net ~vdd ~gnd ~inputs:drive in
    let expected = spec bits in
    List.iteri
      (fun o node ->
        let want = if expected.(o) then V1 else V0 in
        if values.(node) <> want then ok := false)
      out_nodes
  done;
  !ok
