(** Mask layers of the scalable NMOS process.

    The layer set is the Mead–Conway NMOS set used by the Caltech design
    community in 1978-79 and named by the Caltech Intermediate Form
    (Sproull & Lyon, 1979): diffusion, polysilicon, contact cut, metal,
    depletion implant, buried contact and overglass. *)

type t =
  | Diffusion  (** green: source/drain/channel regions and diffused wires *)
  | Poly  (** red: polysilicon gates and wires *)
  | Contact  (** black: contact cuts between metal and poly/diffusion *)
  | Metal  (** blue: metal wires and power rails *)
  | Implant  (** yellow: depletion-mode implant for pull-up loads *)
  | Buried  (** brown: buried poly-diffusion contacts *)
  | Glass  (** overglass openings for bonding pads *)

val all : t list

(** CIF 2.0 layer name, e.g. [ND] for NMOS diffusion. *)
val cif_name : t -> string

val of_cif_name : string -> t option

(** Conventional Mead–Conway colour, for renderers and debug output. *)
val color : t -> string

(** Stable small index, usable as an array key; [index] enumerates [all]. *)
val index : t -> int

val count : int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
