(** The lambda design-rule deck.

    Dimensions are in lambda, the scalable unit of Mead & Conway
    ("Introduction to VLSI Systems", ref [1] of the paper).  The deck is
    the standard NMOS set: 2-lambda minimum features on poly and
    diffusion, 3-lambda metal, 2x2 contact cuts with 1-lambda surround. *)

type rule =
  | Min_width of Layer.t * int
      (** every maximal rectangle on the layer is at least this wide in
          its narrow dimension *)
  | Min_spacing of Layer.t * Layer.t * int
      (** unconnected shapes on the two layers keep at least this
          separation (same layer twice = intra-layer spacing) *)
  | Min_enclosure of Layer.t * Layer.t * int
      (** every shape of the first layer is enclosed by a shape of the
          second with this margin, e.g. contact by metal *)

val deck : rule list

val min_width : Layer.t -> int

(** Intra-layer spacing. *)
val min_spacing : Layer.t -> int

(** Inter-layer spacing; 0 when the layers have no rule. *)
val cross_spacing : Layer.t -> Layer.t -> int

(** Enclosure margin of [inner] by [outer]; 0 when no rule applies. *)
val enclosure : inner:Layer.t -> outer:Layer.t -> int

(** Centimicrons per lambda used when writing CIF (lambda = 2.5 um,
    the 1979 Mead-Conway value). *)
val centimicrons_per_lambda : int

(** Transistor geometry helpers: poly gate extension beyond the channel
    and diffusion source/drain extension, both in lambda. *)
val gate_poly_extension : int

val gate_diff_extension : int

(** Implant margin around a depletion pull-up gate. *)
val implant_margin : int

val pp_rule : Format.formatter -> rule -> unit
