type t = Diffusion | Poly | Contact | Metal | Implant | Buried | Glass

let all = [ Diffusion; Poly; Contact; Metal; Implant; Buried; Glass ]

let cif_name = function
  | Diffusion -> "ND"
  | Poly -> "NP"
  | Contact -> "NC"
  | Metal -> "NM"
  | Implant -> "NI"
  | Buried -> "NB"
  | Glass -> "NG"

let of_cif_name = function
  | "ND" -> Some Diffusion
  | "NP" -> Some Poly
  | "NC" -> Some Contact
  | "NM" -> Some Metal
  | "NI" -> Some Implant
  | "NB" -> Some Buried
  | "NG" -> Some Glass
  | _ -> None

let color = function
  | Diffusion -> "green"
  | Poly -> "red"
  | Contact -> "black"
  | Metal -> "blue"
  | Implant -> "yellow"
  | Buried -> "brown"
  | Glass -> "grey"

let index = function
  | Diffusion -> 0
  | Poly -> 1
  | Contact -> 2
  | Metal -> 3
  | Implant -> 4
  | Buried -> 5
  | Glass -> 6

let count = 7
let equal (a : t) b = a = b
let compare a b = Int.compare (index a) (index b)
let pp ppf l = Format.pp_print_string ppf (cif_name l)
let to_string = cif_name
