type rule =
  | Min_width of Layer.t * int
  | Min_spacing of Layer.t * Layer.t * int
  | Min_enclosure of Layer.t * Layer.t * int

open Layer

let deck =
  [ Min_width (Diffusion, 2)
  ; Min_width (Poly, 2)
  ; Min_width (Contact, 2)
  ; Min_width (Metal, 3)
  ; Min_width (Implant, 4)
  ; Min_width (Buried, 2)
  ; Min_width (Glass, 10)
  ; Min_spacing (Diffusion, Diffusion, 3)
  ; Min_spacing (Poly, Poly, 2)
  ; Min_spacing (Metal, Metal, 3)
  ; Min_spacing (Contact, Contact, 2)
  ; Min_spacing (Poly, Diffusion, 1)
  ; Min_spacing (Implant, Implant, 2)
  ; Min_enclosure (Contact, Metal, 1)
  ; Min_enclosure (Glass, Metal, 2)
  ]

let min_width l =
  let rec find = function
    | Min_width (l', w) :: _ when Layer.equal l l' -> w
    | _ :: rest -> find rest
    | [] -> 1
  in
  find deck

let cross_spacing a b =
  let rec find = function
    | Min_spacing (x, y, s) :: _
      when (Layer.equal a x && Layer.equal b y)
           || (Layer.equal a y && Layer.equal b x) -> s
    | _ :: rest -> find rest
    | [] -> 0
  in
  find deck

let min_spacing l = cross_spacing l l

let enclosure ~inner ~outer =
  let rec find = function
    | Min_enclosure (i, o, m) :: _ when Layer.equal i inner && Layer.equal o outer -> m
    | _ :: rest -> find rest
    | [] -> 0
  in
  find deck

let centimicrons_per_lambda = 250
let gate_poly_extension = 2
let gate_diff_extension = 2
let implant_margin = 2

let pp_rule ppf = function
  | Min_width (l, w) -> Format.fprintf ppf "width(%a) >= %d" Layer.pp l w
  | Min_spacing (a, b, s) ->
    Format.fprintf ppf "spacing(%a,%a) >= %d" Layer.pp a Layer.pp b s
  | Min_enclosure (i, o, m) ->
    Format.fprintf ppf "enclosure(%a in %a) >= %d" Layer.pp i Layer.pp o m
