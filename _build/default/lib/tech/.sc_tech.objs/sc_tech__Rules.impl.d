lib/tech/rules.ml: Format Layer
