lib/tech/rules.mli: Format Layer
