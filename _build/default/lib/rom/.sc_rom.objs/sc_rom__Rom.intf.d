lib/rom/rom.mli: Format Sc_layout Sc_netlist Sc_pla
