lib/rom/rom.ml: Array Cover Cube Format List Sc_logic Sc_pla
