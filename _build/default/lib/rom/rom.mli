(** The ROM generator: the other regular block of the paper's C2 claim.

    A ROM is organized exactly like a PLA whose AND plane is a full
    address decoder: one row per word, fully specified (no don't-cares),
    with the OR plane holding the stored bits.  The generator therefore
    reuses {!Sc_pla.Generator} with minimization disabled — the
    regularity, not logic sharing, is the point of the block.

    [optimize:true] instead lets the minimizer exploit the stored
    pattern, which is the PLA-vs-ROM trade explored in experiment E3. *)

type t =
  { words : int
  ; bits : int
  ; addr_width : int
  ; pla : Sc_pla.Generator.t
  }

(** [generate ?optimize ?name ~bits contents] — [contents.(w)] is the word
    at address [w]; addresses above [Array.length contents] read 0.
    @raise Invalid_argument when [bits] exceeds 62 or contents is empty. *)
val generate : ?optimize:bool -> ?name:string -> bits:int -> int array -> t

val layout : t -> Sc_layout.Cell.t

val netlist : t -> Sc_netlist.Circuit.t

(** Closed-form area of the unoptimized ROM. *)
val predicted_area : words:int -> bits:int -> int

val pp_summary : Format.formatter -> t -> unit
