open Sc_logic

type t =
  { words : int
  ; bits : int
  ; addr_width : int
  ; pla : Sc_pla.Generator.t
  }

let rec clog2 n = if n <= 1 then 0 else 1 + clog2 ((n + 1) / 2)

let generate ?(optimize = false) ?(name = "rom") ~bits contents =
  let words = Array.length contents in
  if words = 0 then invalid_arg "Rom.generate: empty contents";
  if bits < 1 || bits > 62 then invalid_arg "Rom.generate: bits out of range";
  let addr_width = max 1 (clog2 words) in
  let cubes = ref [] in
  Array.iteri
    (fun w data ->
      let mask = data land ((1 lsl bits) - 1) in
      if mask <> 0 then begin
        let lits = Array.init addr_width (fun i ->
            if w land (1 lsl i) <> 0 then Cube.One else Cube.Zero)
        in
        cubes := Cube.make lits mask :: !cubes
      end)
    contents;
  let cover =
    Cover.make ~ninputs:addr_width ~noutputs:bits (List.rev !cubes)
  in
  let pla = Sc_pla.Generator.generate ~minimize:optimize ~name cover in
  { words; bits; addr_width; pla }

let layout t = t.pla.Sc_pla.Generator.layout
let netlist t = t.pla.Sc_pla.Generator.netlist

let predicted_area ~words ~bits =
  let addr_width = max 1 (clog2 words) in
  (* all-zero words produce no row; the closed form assumes the dense case *)
  Sc_pla.Generator.predicted_area ~ninputs:addr_width ~noutputs:bits
    ~terms:words

let pp_summary ppf t =
  Format.fprintf ppf "ROM %dx%d (addr %d): %a" t.words t.bits t.addr_width
    Sc_pla.Generator.pp_summary t.pla
