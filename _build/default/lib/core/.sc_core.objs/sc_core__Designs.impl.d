lib/core/designs.ml: Array Builder Gate Sc_netlist Sc_rtl
