lib/core/compiler.mli: Cell Sc_layout Sc_netlist
