lib/core/designs.mli: Circuit Sc_netlist Sc_rtl
