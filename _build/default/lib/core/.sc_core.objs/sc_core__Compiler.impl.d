lib/core/compiler.ml: Cell Compose List Sc_cif Sc_drc Sc_lang Sc_layout Sc_netlist Sc_pla Sc_place Sc_rtl Sc_stdcell Sc_synth Stats
