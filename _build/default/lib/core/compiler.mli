(** The silicon compiler facade: "a completely textual description of a
    design translated to layout data".

    Two front doors, one per definition of silicon compilation debated in
    the paper:

    - {!compile_layout}: structural/graphical path — layout-language text
      straight to artwork;
    - {!compile_behavior}: behavioral path — ISP text through synthesis,
      placement and cell layout.

    Both end at CIF via {!to_cif}. *)

open Sc_layout

type behavior_style = Random_logic | Pla_control

type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int  (** bounding box, square lambda *)
  ; transistors : int
  }

(** Structural path: layout-language source to artwork. *)
val compile_layout :
  ?entry:string -> ?args:int list -> string -> (compiled, string) result

(** Behavioral path: ISP source to a placed layout of standard cells (or
    a PLA plus registers).  Also returns the synthesized circuit. *)
val compile_behavior :
  ?style:behavior_style ->
  string ->
  (compiled * Sc_netlist.Circuit.t, string) result

(** Place a gate-level circuit as standard-cell rows (the physical view
    used by the behavioral path and experiments). *)
val layout_of_circuit : name:string -> Sc_netlist.Circuit.t -> Cell.t

val to_cif : Cell.t -> string

(** Measure an existing layout the same way the compilers do. *)
val measure : Cell.t -> compiled
