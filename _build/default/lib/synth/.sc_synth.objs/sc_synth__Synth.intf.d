lib/synth/synth.mli: Circuit Sc_netlist Sc_pla Sc_rtl
