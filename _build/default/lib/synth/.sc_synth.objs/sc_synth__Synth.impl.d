lib/synth/synth.ml: Array Builder Circuit Gate List Map Optimize Printf Sc_layout Sc_logic Sc_netlist Sc_pla Sc_rtl Sc_sim Sc_stdcell String Timing
