lib/drc/checker.ml: Array Flatten Format Int Layer List Printf Rect Rules Sc_geom Sc_layout Sc_tech
