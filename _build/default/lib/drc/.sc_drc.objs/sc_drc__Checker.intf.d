lib/drc/checker.mli: Cell Flatten Format Rect Rules Sc_geom Sc_layout Sc_tech
