lib/pla/generator.mli: Cover Format Sc_layout Sc_logic Sc_netlist
