lib/pla/generator.ml: Array Builder Cell Circuit Cover Cube Format Layer List Minimize Printf Rect Sc_geom Sc_layout Sc_logic Sc_netlist Sc_tech
