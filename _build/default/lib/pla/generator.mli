(** The PLA generator: a regular block programmed for a specific function
    (the paper's C2 claim, its "microscopic" silicon compilation).

    Given a {!Sc_logic.Cover} the generator produces

    - a transistor-level NMOS layout (NOR-NOR organization: an AND plane
      of vertical dual-rail poly input columns crossing horizontal
      product-term rows, and an OR plane where product rows continue in
      poly and cross vertical metal output columns; depletion pull-ups on
      every row and output column use buried contacts for the gate tie);
    - a gate-level netlist view with identical logic, for simulation and
      timing.

    The artwork is electrically complete: every programmed device has a
    drain contact to its row/column line and a source merged into the
    ground network (per-column ground diffusion in the AND plane,
    per-row ground diffusion in the OR plane, a bottom GND rail and a
    right-hand collector column).  Only the input *driver* inverters
    live outside the block: the layout exposes dual-rail poly ports
    ["in<i>_t"] / ["in<i>_c"] at the bottom edge, and the netlist view
    contains the inverters.  Output ports ["out<j>"] are the metal
    columns at the bottom edge; ["vdd"] is the left rail and ["gnd"]
    the bottom rail.  The raw NOR-plane output columns carry the
    complemented function, as in any unbuffered NOR-NOR PLA; the
    netlist view models the buffered (true) outputs.

    Every generated layout passes the design-rule deck, its
    row/column/device counts follow the personality matrix exactly, and
    {!Sc_extract}-style extraction plus switch-level simulation of the
    artwork reproduces the cover — all three enforced by tests. *)

open Sc_logic

type t =
  { cover : Cover.t
  ; layout : Sc_layout.Cell.t
  ; netlist : Sc_netlist.Circuit.t
  ; rows : int  (** product terms *)
  ; and_devices : int  (** programmed sites in the AND plane *)
  ; or_devices : int  (** programmed sites in the OR plane *)
  }

(** [generate ?minimize ?name cover] — when [minimize] is [true]
    (default), the cover is first reduced with {!Sc_logic.Minimize}. *)
val generate : ?minimize:bool -> ?name:string -> Cover.t -> t

(** Area of the PLA layout in square lambda, without generating geometry
    (closed-form from rows/inputs/outputs; exact for [generate]'s frame). *)
val predicted_area : ninputs:int -> noutputs:int -> terms:int -> int

(** The layout cell alone. *)
val layout : t -> Sc_layout.Cell.t

val pp_summary : Format.formatter -> t -> unit
