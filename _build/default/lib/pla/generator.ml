open Sc_geom
open Sc_tech
open Sc_layout
open Sc_logic
open Sc_netlist

type t =
  { cover : Cover.t
  ; layout : Cell.t
  ; netlist : Circuit.t
  ; rows : int
  ; and_devices : int
  ; or_devices : int
  }

(* Geometry: 12-lambda row and column pitch, a 14-lambda pull-up strip on
   the left of each row, a 10-lambda metal-to-poly interface column
   between the planes, pull-up heads above the OR columns, one shared VDD
   rail (left column + top strip) and a full ground network — a bottom
   GND rail, one vertical ground-diffusion column per input column in the
   AND plane, and one ground-diffusion row per product term in the OR
   plane, collected by a vertical ground-metal column on the right.  The
   ground network is what lets the generated artwork be extracted and
   simulated at switch level (see Sc_extract). *)
let pitch = 12
let head_w = 14

(* Derived frame coordinates, shared by the generator and the area
   predictor so they can never disagree. *)
let frame ~ninputs ~noutputs ~terms =
  let t = max terms 1 in
  let ix = head_w + (2 * ninputs * pitch) in
  let ox = ix + 10 in
  let gx = ox + (noutputs * pitch) + 3 in
  let yh = pitch * t in
  (ix, ox, gx, yh)

let predicted_area ~ninputs ~noutputs ~terms =
  let _, _, gx, yh = frame ~ninputs ~noutputs ~terms in
  (* bbox: x in 0 .. gx+4, y in -9 .. yh+12 *)
  (gx + 4) * (yh + 12 + 9)

let box l r = Cell.box l r

(* metal-covered contact cut *)
let contact x y acc =
  box Layer.Contact (Rect.make x y (x + 2) (y + 2))
  :: box Layer.Metal (Rect.make (x - 1) (y - 1) (x + 3) (y + 3))
  :: acc

let build_layout name (cover : Cover.t) =
  let n = cover.Cover.ninputs in
  let m = cover.Cover.noutputs in
  let cubes = Array.of_list cover.Cover.cubes in
  let t = max (Array.length cubes) 1 in
  let ix, ox, gx, yh = frame ~ninputs:n ~noutputs:m ~terms:t in
  let elements = ref [] in
  let add e = elements := e :: !elements in
  let addc x y = elements := contact x y !elements in
  (* shared VDD: left column joined to the top strip *)
  add (box Layer.Metal (Rect.make 0 0 3 (yh + 12)));
  add (box Layer.Metal (Rect.make 0 (yh + 9) (gx + 4) (yh + 12)));
  (* ground: bottom rail and the OR-plane collector column *)
  add (box Layer.Metal (Rect.make head_w (-9) (gx + 4) (-6)));
  if m > 0 then add (box Layer.Metal (Rect.make gx (-9) (gx + 4) (yh - 8)));
  (* per-row structures *)
  for r = 0 to t - 1 do
    let y0 = r * pitch in
    (* row head: depletion pull-up from VDD to the row line, gate tied to
       the row through a buried contact *)
    addc 1 (y0 + 4);
    add (box Layer.Diffusion (Rect.make 1 (y0 + 4) 11 (y0 + 6)));
    add (box Layer.Poly (Rect.make 5 (y0 + 1) 7 (y0 + 9)));
    add (box Layer.Implant (Rect.make 3 (y0 + 2) 9 (y0 + 8)));
    add (box Layer.Poly (Rect.make 7 (y0 + 3) 9 (y0 + 7)));
    add (box Layer.Buried (Rect.make 7 (y0 + 4) 9 (y0 + 6)));
    addc 9 (y0 + 4);
    add (box Layer.Metal (Rect.make 8 (y0 + 3) head_w (y0 + 7)));
    (* AND-plane row metal *)
    add (box Layer.Metal (Rect.make head_w (y0 + 3) ix (y0 + 6)));
    (* interface: metal row to poly row (metal stops short of the plane) *)
    add (box Layer.Metal (Rect.make ix (y0 + 3) (ix + 8) (y0 + 6)));
    add (box Layer.Poly (Rect.make (ix + 4) (y0 + 4) (ix + 10) (y0 + 6)));
    addc (ix + 5) (y0 + 4);
    if m > 0 then begin
      (* OR-plane poly row *)
      add (box Layer.Poly (Rect.make ox (y0 + 4) (ox + (pitch * m)) (y0 + 6)));
      (* OR-plane ground row, collected on the right *)
      add (box Layer.Diffusion (Rect.make ox y0 (gx + 3) (y0 + 2)));
      addc (gx + 1) y0
    end
  done;
  (* AND-plane poly input columns (true, complement per input) and their
     ground-return diffusion columns *)
  for c = 0 to (2 * n) - 1 do
    let x0 = head_w + (c * pitch) in
    add (box Layer.Poly (Rect.make (x0 + 4) 0 (x0 + 6) yh));
    add (box Layer.Diffusion (Rect.make (x0 + 8) (-8) (x0 + 10) yh));
    addc (x0 + 8) (-8)
  done;
  (* OR-plane metal output columns *)
  for o = 0 to m - 1 do
    let x0 = ox + (o * pitch) in
    add (box Layer.Metal (Rect.make (x0 + 5) 0 (x0 + 8) yh))
  done;
  (* programmed AND-plane sites *)
  let and_devices = ref 0 in
  Array.iteri
    (fun r cube ->
      let y0 = r * pitch in
      Array.iteri
        (fun i lit ->
          let col =
            match (lit : Cube.lit) with
            | Cube.Zero -> Some (2 * i) (* device on the true column *)
            | Cube.One -> Some ((2 * i) + 1) (* on the complement column *)
            | Cube.Dash -> None
          in
          match col with
          | None -> ()
          | Some c ->
            incr and_devices;
            let x0 = head_w + (c * pitch) in
            (* drain contacted to the row, source merging with the ground
               column on the right *)
            add (box Layer.Diffusion (Rect.make (x0 + 1) (y0 + 5) (x0 + 8) (y0 + 9)));
            addc (x0 + 1) (y0 + 6))
        cube.Cube.lits)
    cubes;
  (* programmed OR-plane sites *)
  let or_devices = ref 0 in
  Array.iteri
    (fun r cube ->
      let y0 = r * pitch in
      for o = 0 to m - 1 do
        if cube.Cube.outputs land (1 lsl o) <> 0 then begin
          incr or_devices;
          let x0 = ox + (o * pitch) in
          (* vertical device: source joins the ground row below, drain
             contacts the output column above the row poly *)
          add (box Layer.Diffusion (Rect.make (x0 + 9) (y0 + 2) (x0 + 11) (y0 + 9)));
          addc (x0 + 9) (y0 + 6)
        end
      done)
    cubes;
  (* OR-column pull-up heads; the diffusion reaches down to yh-3 so a
     programmed top-row site merges with it (same electrical column) *)
  for o = 0 to m - 1 do
    let x0 = ox + (o * pitch) in
    addc (x0 + 9) (yh + 1);
    add (box Layer.Diffusion (Rect.make (x0 + 9) (yh - 3) (x0 + 11) (yh + 10)));
    add (box Layer.Poly (Rect.make (x0 + 9) (yh + 3) (x0 + 11) (yh + 5)));
    add (box Layer.Buried (Rect.make (x0 + 9) (yh + 3) (x0 + 11) (yh + 5)));
    add (box Layer.Poly (Rect.make (x0 + 7) (yh + 5) (x0 + 13) (yh + 7)));
    add (box Layer.Implant (Rect.make (x0 + 7) (yh + 3) (x0 + 13) (yh + 9)));
    addc (x0 + 9) (yh + 8)
  done;
  let ports =
    Cell.port "vdd" Layer.Metal (Rect.make 0 0 3 0)
    :: Cell.port "gnd" Layer.Metal (Rect.make head_w (-9) head_w (-6))
    :: List.concat
         (List.init n (fun i ->
              let xt = head_w + (2 * i * pitch) + 4 in
              let xc = head_w + (((2 * i) + 1) * pitch) + 4 in
              [ Cell.port (Printf.sprintf "in%d_t" i) Layer.Poly
                  (Rect.make xt 0 (xt + 2) 0)
              ; Cell.port (Printf.sprintf "in%d_c" i) Layer.Poly
                  (Rect.make xc 0 (xc + 2) 0)
              ]))
    @ List.init m (fun o ->
          let x0 = ox + (o * pitch) + 5 in
          Cell.port (Printf.sprintf "out%d" o) Layer.Metal
            (Rect.make x0 0 (x0 + 3) 0))
  in
  (Cell.make ~name ~ports (List.rev !elements), !and_devices, !or_devices)

let build_netlist name (cover : Cover.t) =
  let n = cover.Cover.ninputs in
  let m = cover.Cover.noutputs in
  let b = Builder.create name in
  let ins = Builder.input b "in" n in
  let invs = Array.map (fun i -> Builder.not_ b i) ins in
  let products =
    List.map
      (fun (cube : Cube.t) ->
        let lits = ref [] in
        Array.iteri
          (fun i lit ->
            match (lit : Cube.lit) with
            | Cube.One -> lits := ins.(i) :: !lits
            | Cube.Zero -> lits := invs.(i) :: !lits
            | Cube.Dash -> ())
          cube.Cube.lits;
        (Builder.and_reduce b !lits, cube.Cube.outputs))
      cover.Cover.cubes
  in
  let outs =
    Array.init m (fun o ->
        let terms =
          List.filter_map
            (fun (net, mask) -> if mask land (1 lsl o) <> 0 then Some net else None)
            products
        in
        Builder.or_reduce b terms)
  in
  Builder.output b "out" outs;
  Builder.finish b

let generate ?(minimize = true) ?(name = "pla") cover =
  let cover = if minimize then Minimize.minimize cover else cover in
  let layout, and_devices, or_devices = build_layout name cover in
  let netlist = build_netlist name cover in
  { cover
  ; layout
  ; netlist
  ; rows = max (Cover.term_count cover) 1
  ; and_devices
  ; or_devices
  }

let layout t = t.layout

let pp_summary ppf t =
  Format.fprintf ppf
    "PLA %s: %d inputs, %d outputs, %d terms; %d+%d devices; %dx%d lambda"
    t.layout.Cell.name t.cover.Cover.ninputs t.cover.Cover.noutputs t.rows
    t.and_devices t.or_devices (Cell.width t.layout) (Cell.height t.layout)
