(** The layout language: the paper's first definition of silicon
    compilation — "a high level graphic language for producing artwork".

    Programs define parameterised cells; evaluating a program yields a
    {!Sc_layout.Cell.t} hierarchy ready for DRC and CIF emission.  The
    three properties the paper demands of graphics languages are all
    present: repetition ([for] / [array]), parameterisation (cell
    arguments and arithmetic), and hierarchy (cells instantiate cells;
    repeated instantiations share one definition).

    {2 Syntax}

    {v
    -- a row of n contacted tiles
    cell tile(w) {
      box metal 0 0 w 4;
      box poly 1 6 3 6+4;
      port a poly 1 6 3 10;
    }
    cell main(n) {
      for i = 0 to n-1 {
        inst tile(8) at (i*10, 0);
      }
      inst nand2() at (0, 20);      -- standard cells are built in
      wire metal 4 (0,14) (n*10,14);
    }
    v}

    Statements: [box LAYER x0 y0 x1 y1;], [wire LAYER width (x,y) ...;],
    [inst EXPR at (x,y) orient R90;] (placement clauses optional),
    [port NAME LAYER x0 y0 x1 y1;], [let NAME = EXPR;],
    [for I = E to E { ... }], [if E { ... } else { ... }].

    Expressions: integers, arithmetic [+ - * /], comparisons, cell calls
    [name(args)], and the built-in cells [inv()], [nand2()], [nand3()],
    [nor2()], [and2()], [or2()], [xor2()], [mux2()], [dff()], plus
    combinators [beside(a,b)], [above(a,b)], [rowof(n, c)],
    [arrayof(nx, ny, c)], and the measurers [width(c)], [height(c)].

    Layers: [diff], [poly], [contact], [metal], [implant], [buried],
    [glass]. *)

type error = { message : string; line : int }

val error_to_string : error -> string

(** [compile ?entry ?args src] parses and evaluates; [entry] defaults to
    the last cell defined (commonly ["main"]), applied to [args]
    (default [[]]). *)
val compile :
  ?entry:string -> ?args:int list -> string -> (Sc_layout.Cell.t, error) result

val compile_file :
  ?entry:string -> ?args:int list -> string -> (Sc_layout.Cell.t, error) result
