open Sc_geom
open Sc_tech
open Sc_layout

type error = { message : string; line : int }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

exception Err of error

let fail line fmt = Format.kasprintf (fun s -> raise (Err { message = s; line })) fmt

(* --- lexer --- *)

type token =
  | Tident of string
  | Tint of int
  | Tsym of string
  | Teof

let keywords =
  [ "cell"; "let"; "for"; "to"; "if"; "else"; "inst"; "at"; "orient"; "box"
  ; "wire"; "port"
  ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let emit t = toks := (t, !line) :: !toks in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '-' && !pos + 1 < n && src.[!pos + 1] = '-' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !pos in
      while !pos < n && is_ident src.[!pos] do
        incr pos
      done;
      emit (Tident (String.sub src start (!pos - start)))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !pos in
      while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
        incr pos
      done;
      emit (Tint (int_of_string (String.sub src start (!pos - start))))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" ->
        emit (Tsym two);
        pos := !pos + 2
      | _ -> (
        match c with
        | '{' | '}' | '(' | ')' | ',' | ';' | '=' | '+' | '-' | '*' | '/'
        | '<' | '>' | '%' ->
          emit (Tsym (String.make 1 c));
          incr pos
        | _ -> fail !line "unexpected character %C" c)
    end
  done;
  emit Teof;
  List.rev !toks

(* --- AST --- *)

type expr =
  | Eint of int
  | Evar of string
  | Ebin of string * expr * expr
  | Eneg of expr
  | Ecall of string * expr list * int  (** call site line *)

type stmt =
  | Sbox of string * expr * expr * expr * expr * int
  | Swire of string * expr * (expr * expr) list * int
  | Sinst of expr * (expr * expr) option * string option * int
  | Sport of string * string * expr * expr * expr * expr * int
  | Slet of string * expr
  | Sfor of string * expr * expr * stmt list * int
  | Sif of expr * stmt list * stmt list

type celldef = { cname : string; params : string list; body : stmt list; cline : int }

(* --- parser --- *)

type pstate = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Teof
let line_of st = match st.toks with (_, l) :: _ -> l | [] -> 0
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let expect_sym st s =
  match peek st with
  | Tsym s' when s = s' -> advance st
  | _ -> fail (line_of st) "expected %S" s

let expect_kw st k =
  match peek st with
  | Tident i when i = k -> advance st
  | _ -> fail (line_of st) "expected %S" k

let expect_ident st =
  match peek st with
  | Tident i when not (List.mem i keywords) ->
    advance st;
    i
  | _ -> fail (line_of st) "expected identifier"

let rec parse_cmp st =
  let a = parse_add st in
  match peek st with
  | Tsym (("==" | "!=" | "<" | ">" | "<=" | ">=") as op) ->
    advance st;
    Ebin (op, a, parse_add st)
  | _ -> a

and parse_add st =
  let rec loop a =
    match peek st with
    | Tsym (("+" | "-") as op) ->
      advance st;
      loop (Ebin (op, a, parse_mul st))
    | _ -> a
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop a =
    match peek st with
    | Tsym (("*" | "/" | "%") as op) ->
      advance st;
      loop (Ebin (op, a, parse_atom st))
    | _ -> a
  in
  loop (parse_atom st)

and parse_atom st =
  match peek st with
  | Tint v ->
    advance st;
    Eint v
  | Tsym "-" ->
    advance st;
    Eneg (parse_atom st)
  | Tsym "(" ->
    advance st;
    let e = parse_cmp st in
    expect_sym st ")";
    e
  | Tident i when not (List.mem i keywords) -> (
    let ln = line_of st in
    advance st;
    match peek st with
    | Tsym "(" ->
      advance st;
      let args = ref [] in
      (match peek st with
      | Tsym ")" -> advance st
      | _ ->
        let rec loop () =
          args := parse_cmp st :: !args;
          match peek st with
          | Tsym "," ->
            advance st;
            loop ()
          | _ -> expect_sym st ")"
        in
        loop ());
      Ecall (i, List.rev !args, ln)
    | _ -> Evar i)
  | _ -> fail (line_of st) "expected expression"

let parse_point st =
  expect_sym st "(";
  let x = parse_cmp st in
  expect_sym st ",";
  let y = parse_cmp st in
  expect_sym st ")";
  (x, y)

let rec parse_stmt st =
  let ln = line_of st in
  match peek st with
  | Tident "box" ->
    advance st;
    let layer = expect_ident st in
    let x0 = parse_cmp st in
    let y0 = parse_cmp st in
    let x1 = parse_cmp st in
    let y1 = parse_cmp st in
    expect_sym st ";";
    Sbox (layer, x0, y0, x1, y1, ln)
  | Tident "wire" ->
    advance st;
    let layer = expect_ident st in
    let w = parse_cmp st in
    let pts = ref [] in
    while peek st = Tsym "(" do
      pts := parse_point st :: !pts
    done;
    expect_sym st ";";
    Swire (layer, w, List.rev !pts, ln)
  | Tident "inst" ->
    advance st;
    let e = parse_cmp st in
    let at =
      match peek st with
      | Tident "at" ->
        advance st;
        Some (parse_point st)
      | _ -> None
    in
    let orient =
      match peek st with
      | Tident "orient" ->
        advance st;
        Some (expect_ident st)
      | _ -> None
    in
    expect_sym st ";";
    Sinst (e, at, orient, ln)
  | Tident "port" ->
    advance st;
    let name = expect_ident st in
    let layer = expect_ident st in
    let x0 = parse_cmp st in
    let y0 = parse_cmp st in
    let x1 = parse_cmp st in
    let y1 = parse_cmp st in
    expect_sym st ";";
    Sport (name, layer, x0, y0, x1, y1, ln)
  | Tident "let" ->
    advance st;
    let name = expect_ident st in
    expect_sym st "=";
    let e = parse_cmp st in
    expect_sym st ";";
    Slet (name, e)
  | Tident "for" ->
    advance st;
    let v = expect_ident st in
    expect_sym st "=";
    let lo = parse_cmp st in
    expect_kw st "to";
    let hi = parse_cmp st in
    let body = parse_block st in
    Sfor (v, lo, hi, body, ln)
  | Tident "if" ->
    advance st;
    let c = parse_cmp st in
    let t = parse_block st in
    let e =
      match peek st with
      | Tident "else" ->
        advance st;
        parse_block st
      | _ -> []
    in
    Sif (c, t, e)
  | _ -> fail ln "expected statement"

and parse_block st =
  expect_sym st "{";
  let acc = ref [] in
  while peek st <> Tsym "}" && peek st <> Teof do
    acc := parse_stmt st :: !acc
  done;
  expect_sym st "}";
  List.rev !acc

let parse_program st =
  let cells = ref [] in
  while peek st <> Teof do
    let ln = line_of st in
    expect_kw st "cell";
    let name = expect_ident st in
    expect_sym st "(";
    let params = ref [] in
    (match peek st with
    | Tsym ")" -> advance st
    | _ ->
      let rec loop () =
        params := expect_ident st :: !params;
        match peek st with
        | Tsym "," ->
          advance st;
          loop ()
        | _ -> expect_sym st ")"
      in
      loop ());
    let body = parse_block st in
    cells := { cname = name; params = List.rev !params; body; cline = ln } :: !cells
  done;
  List.rev !cells

(* --- evaluator --- *)

type value = Vint of int | Vcell of Cell.t

let layer_of_name ln = function
  | "diff" -> Layer.Diffusion
  | "poly" -> Layer.Poly
  | "contact" -> Layer.Contact
  | "metal" -> Layer.Metal
  | "implant" -> Layer.Implant
  | "buried" -> Layer.Buried
  | "glass" -> Layer.Glass
  | l -> fail ln "unknown layer %S" l

let stdcell_builtins =
  [ ("inv", Sc_netlist.Gate.Inv)
  ; ("buf", Sc_netlist.Gate.Buf)
  ; ("nand2", Sc_netlist.Gate.Nand2)
  ; ("nand3", Sc_netlist.Gate.Nand3)
  ; ("nor2", Sc_netlist.Gate.Nor2)
  ; ("nor3", Sc_netlist.Gate.Nor3)
  ; ("and2", Sc_netlist.Gate.And2)
  ; ("or2", Sc_netlist.Gate.Or2)
  ; ("xor2", Sc_netlist.Gate.Xor2)
  ; ("xnor2", Sc_netlist.Gate.Xnor2)
  ; ("mux2", Sc_netlist.Gate.Mux2)
  ; ("dff", Sc_netlist.Gate.Dff)
  ; ("dffe", Sc_netlist.Gate.Dffe)
  ]

type env =
  { cells : (string, celldef) Hashtbl.t
  ; memo : (string, Cell.t) Hashtbl.t
  ; mutable steps : int
  ; mutable depth : int
  }

let max_steps = 2_000_000
let max_depth = 64

let tick env ln =
  env.steps <- env.steps + 1;
  if env.steps > max_steps then fail ln "evaluation budget exceeded"

let rec eval_expr env vars e : value =
  match e with
  | Eint v -> Vint v
  | Evar n -> (
    match List.assoc_opt n vars with
    | Some v -> v
    | None -> fail 0 "unbound variable %S" n)
  | Eneg e' -> (
    match eval_expr env vars e' with
    | Vint v -> Vint (-v)
    | Vcell _ -> fail 0 "cannot negate a cell")
  | Ebin (op, a, b) -> (
    let va = eval_expr env vars a and vb = eval_expr env vars b in
    match (va, vb) with
    | Vint x, Vint y ->
      let r =
        match op with
        | "+" -> x + y
        | "-" -> x - y
        | "*" -> x * y
        | "/" ->
          if y = 0 then fail 0 "division by zero";
          x / y
        | "%" ->
          if y = 0 then fail 0 "division by zero";
          x mod y
        | "==" -> if x = y then 1 else 0
        | "!=" -> if x <> y then 1 else 0
        | "<" -> if x < y then 1 else 0
        | ">" -> if x > y then 1 else 0
        | "<=" -> if x <= y then 1 else 0
        | ">=" -> if x >= y then 1 else 0
        | _ -> fail 0 "unknown operator %S" op
      in
      Vint r
    | _ -> fail 0 "operator %S needs integers" op)
  | Ecall (name, args, ln) -> eval_call env vars name args ln

and eval_call env vars name args ln =
  tick env ln;
  let values = List.map (eval_expr env vars) args in
  let int_arg i =
    match List.nth_opt values i with
    | Some (Vint v) -> v
    | _ -> fail ln "%s: argument %d must be an integer" name (i + 1)
  in
  let cell_arg i =
    match List.nth_opt values i with
    | Some (Vcell c) -> c
    | _ -> fail ln "%s: argument %d must be a cell" name (i + 1)
  in
  let arity k =
    if List.length values <> k then
      fail ln "%s expects %d arguments, got %d" name k (List.length values)
  in
  match List.assoc_opt name stdcell_builtins with
  | Some kind ->
    arity 0;
    Vcell (Sc_stdcell.Library.layout_of kind)
  | None -> (
    match name with
    | "beside" ->
      arity 2;
      Vcell (Compose.beside ~name:"beside" (cell_arg 0) (cell_arg 1))
    | "above" ->
      arity 2;
      Vcell (Compose.above ~name:"above" (cell_arg 0) (cell_arg 1))
    | "rowof" ->
      arity 2;
      let n = int_arg 0 in
      if n < 1 then fail ln "rowof: count must be positive";
      Vcell (Compose.row ~name:"rowof" (List.init n (fun _ -> cell_arg 1)))
    | "arrayof" ->
      arity 3;
      let nx = int_arg 0 and ny = int_arg 1 in
      if nx < 1 || ny < 1 then fail ln "arrayof: counts must be positive";
      Vcell (Compose.array ~name:"arrayof" ~nx ~ny (cell_arg 2))
    | "width" ->
      arity 1;
      Vint (Cell.width (cell_arg 0))
    | "height" ->
      arity 1;
      Vint (Cell.height (cell_arg 0))
    | _ -> (
      match Hashtbl.find_opt env.cells name with
      | None -> fail ln "unknown cell or function %S" name
      | Some def ->
        if List.length values <> List.length def.params then
          fail ln "cell %s expects %d arguments, got %d" name
            (List.length def.params) (List.length values);
        (* share evaluated definitions: same cell + same integer actuals
           yield the same Cell.t, so instances share one CIF symbol *)
        let key =
          if List.for_all (function Vint _ -> true | _ -> false) values then
            Some
              (name ^ "("
              ^ String.concat ","
                  (List.map
                     (function Vint v -> string_of_int v | _ -> assert false)
                     values)
              ^ ")")
          else None
        in
        (match key with
        | Some k when Hashtbl.mem env.memo k -> Vcell (Hashtbl.find env.memo k)
        | _ ->
          env.depth <- env.depth + 1;
          if env.depth > max_depth then fail ln "cell nesting too deep";
          let cell = eval_cell env def values in
          env.depth <- env.depth - 1;
          (match key with Some k -> Hashtbl.replace env.memo k cell | None -> ());
          Vcell cell)))

and eval_cell env def values =
  let vars = List.combine def.params values in
  let elements = ref [] in
  let instances = ref [] in
  let ports = ref [] in
  let counter = ref 0 in
  let int_of vars e ln what =
    match eval_expr env vars e with
    | Vint v -> v
    | Vcell _ -> fail ln "%s must be an integer" what
  in
  let rec exec vars stmts = List.fold_left exec_stmt vars stmts
  and exec_stmt vars stmt =
    (match stmt with
    | Slet _ -> ()
    | Sbox (_, _, _, _, _, ln)
    | Swire (_, _, _, ln)
    | Sinst (_, _, _, ln)
    | Sport (_, _, _, _, _, _, ln)
    | Sfor (_, _, _, _, ln) -> tick env ln
    | Sif _ -> ());
    match stmt with
    | Sbox (layer, x0, y0, x1, y1, ln) ->
      let l = layer_of_name ln layer in
      let r =
        Rect.make (int_of vars x0 ln "box") (int_of vars y0 ln "box")
          (int_of vars x1 ln "box") (int_of vars y1 ln "box")
      in
      elements := Cell.box l r :: !elements;
      vars
    | Swire (layer, w, pts, ln) ->
      let l = layer_of_name ln layer in
      let width = int_of vars w ln "wire width" in
      if width <= 0 || width mod 2 <> 0 then
        fail ln "wire width must be positive and even";
      let points =
        List.map
          (fun (x, y) ->
            Point.make (int_of vars x ln "wire point") (int_of vars y ln "wire point"))
          pts
      in
      if List.length points < 2 then fail ln "wire needs at least two points";
      let path = Path.make ~width points in
      if not (Path.is_manhattan path) then fail ln "wire must be Manhattan";
      elements := Cell.Wire (l, path) :: !elements;
      vars
    | Sinst (e, at, orient, ln) ->
      let cell =
        match eval_expr env vars e with
        | Vcell c -> c
        | Vint _ -> fail ln "inst needs a cell"
      in
      let shift =
        match at with
        | Some (x, y) ->
          Point.make (int_of vars x ln "inst at") (int_of vars y ln "inst at")
        | None -> Point.origin
      in
      let o =
        match orient with
        | None -> Transform.R0
        | Some s -> (
          match Transform.orient_of_string s with
          | Some o -> o
          | None -> fail ln "unknown orientation %S" s)
      in
      incr counter;
      instances :=
        Cell.instantiate
          ~name:(Printf.sprintf "i%d" !counter)
          ~trans:(Transform.make ~orient:o shift)
          cell
        :: !instances;
      vars
    | Sport (pname, layer, x0, y0, x1, y1, ln) ->
      let l = layer_of_name ln layer in
      let r =
        Rect.make (int_of vars x0 ln "port") (int_of vars y0 ln "port")
          (int_of vars x1 ln "port") (int_of vars y1 ln "port")
      in
      if List.exists (fun (p : Cell.port) -> p.pname = pname) !ports then
        fail ln "duplicate port %S" pname;
      ports := Cell.port pname l r :: !ports;
      vars
    | Slet (n, e) -> (n, eval_expr env vars e) :: vars
    | Sfor (v, lo, hi, body, ln) ->
      let lo = int_of vars lo ln "for bound" and hi = int_of vars hi ln "for bound" in
      for i = lo to hi do
        ignore (exec ((v, Vint i) :: vars) body)
      done;
      vars
    | Sif (c, t, e) ->
      let cond =
        match eval_expr env vars c with
        | Vint v -> v <> 0
        | Vcell _ -> fail 0 "if condition must be an integer"
      in
      ignore (exec vars (if cond then t else e));
      vars
  in
  ignore (exec vars def.body);
  let name =
    match values with
    | [] -> def.cname
    | _ ->
      def.cname ^ "_"
      ^ String.concat "_"
          (List.map
             (function Vint v -> string_of_int v | Vcell c -> c.Cell.name)
             values)
  in
  Cell.make ~name ~ports:(List.rev !ports) ~instances:(List.rev !instances)
    (List.rev !elements)

let compile ?entry ?(args = []) src =
  match
    let defs = parse_program { toks = tokenize src } in
    if defs = [] then fail 0 "no cells defined";
    let env =
      { cells = Hashtbl.create 16; memo = Hashtbl.create 16; steps = 0; depth = 0 }
    in
    List.iter
      (fun d ->
        if Hashtbl.mem env.cells d.cname then
          fail d.cline "cell %S defined twice" d.cname;
        if List.mem_assoc d.cname stdcell_builtins then
          fail d.cline "cell %S shadows a builtin" d.cname;
        Hashtbl.replace env.cells d.cname d)
      defs;
    let entry_def =
      match entry with
      | Some name -> (
        match Hashtbl.find_opt env.cells name with
        | Some d -> d
        | None -> fail 0 "entry cell %S not found" name)
      | None -> List.nth defs (List.length defs - 1)
    in
    if List.length args <> List.length entry_def.params then
      fail entry_def.cline "entry cell %s expects %d arguments, got %d"
        entry_def.cname
        (List.length entry_def.params)
        (List.length args);
    eval_cell env entry_def (List.map (fun v -> Vint v) args)
  with
  | cell -> Ok cell
  | exception Err e -> Error e

let compile_file ?entry ?args path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  compile ?entry ?args src
