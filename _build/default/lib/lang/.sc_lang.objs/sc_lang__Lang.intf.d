lib/lang/lang.mli: Sc_layout
