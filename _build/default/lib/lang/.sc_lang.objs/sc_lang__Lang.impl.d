lib/lang/lang.ml: Cell Compose Format Fun Hashtbl Layer List Path Point Printf Rect Sc_geom Sc_layout Sc_netlist Sc_stdcell Sc_tech String Transform
