(** Primitive gates of the standard-module set.

    The NMOS standard modules are inverting logic (inverters, NANDs,
    NORs) plus the composite cells a 1979 module library would provide:
    AND/OR (a NAND/NOR with an output inverter), XOR, a 2-way multiplexer,
    and clocked state (transparent latch and master-slave D flip-flop,
    optionally with a load enable).  All sequential elements share one
    implicit global clock, giving synchronous single-phase semantics. *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2  (** inputs a, b, sel; output = sel ? b : a *)
  | Dff  (** input d *)
  | Dffe  (** inputs d, en: holds when en = 0 *)
  | Const0
  | Const1

val arity : kind -> int

val is_sequential : kind -> bool

(** Evaluate a combinational gate on booleans.
    @raise Invalid_argument on sequential or arity mismatch. *)
val eval : kind -> bool array -> bool

(** Transistor cost of the gate in the NMOS module library (used for the
    space comparisons of E1/E2). *)
val transistors : kind -> int

(** Unit-delay model: gate delay in tau units (pass-through cells cost 0,
    inverting gates 1, composites more). *)
val delay : kind -> int

val all : kind list

val to_string : kind -> string

val of_string : string -> kind option

val pp : Format.formatter -> kind -> unit
