lib/netlist/timing.mli: Circuit Gate
