lib/netlist/gate.ml: Array Format List
