lib/netlist/builder.ml: Array Circuit Gate List Printf
