lib/netlist/optimize.ml: Array Circuit Gate Hashtbl List Option Queue String
