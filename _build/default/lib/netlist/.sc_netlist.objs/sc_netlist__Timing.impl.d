lib/netlist/timing.ml: Array Circuit Gate Hashtbl List Queue
