type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2
  | Dff
  | Dffe
  | Const0
  | Const1

let arity = function
  | Inv | Buf | Dff -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Dffe -> 2
  | Nand3 | Nor3 | Mux2 -> 3
  | Const0 | Const1 -> 0

let is_sequential = function
  | Dff | Dffe -> true
  | Inv | Buf | Nand2 | Nand3 | Nor2 | Nor3 | And2 | Or2 | Xor2 | Xnor2 | Mux2
  | Const0 | Const1 -> false

let eval kind ins =
  if is_sequential kind then invalid_arg "Gate.eval: sequential gate";
  if Array.length ins <> arity kind then invalid_arg "Gate.eval: arity";
  match kind with
  | Inv -> not ins.(0)
  | Buf -> ins.(0)
  | Nand2 -> not (ins.(0) && ins.(1))
  | Nand3 -> not (ins.(0) && ins.(1) && ins.(2))
  | Nor2 -> not (ins.(0) || ins.(1))
  | Nor3 -> not (ins.(0) || ins.(1) || ins.(2))
  | And2 -> ins.(0) && ins.(1)
  | Or2 -> ins.(0) || ins.(1)
  | Xor2 -> ins.(0) <> ins.(1)
  | Xnor2 -> ins.(0) = ins.(1)
  | Mux2 -> if ins.(2) then ins.(1) else ins.(0)
  | Const0 -> false
  | Const1 -> true
  | Dff | Dffe -> assert false

(* NMOS costs: an n-input inverting gate is n pull-downs plus one depletion
   load; composites add an output inverter; the mux is two pass paths plus
   select inversion; the flip-flop is the classic 2-latch master-slave. *)
let transistors = function
  | Inv -> 2
  | Buf -> 4
  | Nand2 | Nor2 -> 3
  | Nand3 | Nor3 -> 4
  | And2 | Or2 -> 5
  | Xor2 | Xnor2 -> 8
  | Mux2 -> 6
  | Dff -> 16
  | Dffe -> 22
  | Const0 | Const1 -> 0

let delay = function
  | Inv -> 1
  | Buf -> 2
  | Nand2 | Nor2 -> 1
  | Nand3 | Nor3 -> 2
  | And2 | Or2 -> 2
  | Xor2 | Xnor2 -> 3
  | Mux2 -> 2
  | Dff | Dffe -> 0
  | Const0 | Const1 -> 0

let all =
  [ Inv; Buf; Nand2; Nand3; Nor2; Nor3; And2; Or2; Xor2; Xnor2; Mux2; Dff
  ; Dffe; Const0; Const1
  ]

let to_string = function
  | Inv -> "inv"
  | Buf -> "buf"
  | Nand2 -> "nand2"
  | Nand3 -> "nand3"
  | Nor2 -> "nor2"
  | Nor3 -> "nor3"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Mux2 -> "mux2"
  | Dff -> "dff"
  | Dffe -> "dffe"
  | Const0 -> "const0"
  | Const1 -> "const1"

let of_string s = List.find_opt (fun k -> to_string k = s) all

let pp ppf k = Format.pp_print_string ppf (to_string k)
