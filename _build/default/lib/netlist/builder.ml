type t =
  { name : string
  ; mutable next_net : int
  ; mutable ports : Circuit.port list
  ; mutable gates : Circuit.gate_inst list
  ; mutable insts : Circuit.inst list
  ; mutable net_names : (Circuit.net * string) list
  ; mutable gate_counter : int
  ; mutable inst_counter : int
  }

let create name =
  { name
  ; next_net = 2 (* 0 and 1 are the constants *)
  ; ports = []
  ; gates = []
  ; insts = []
  ; net_names = []
  ; gate_counter = 0
  ; inst_counter = 0
  }

let fresh b =
  let n = b.next_net in
  b.next_net <- n + 1;
  n

let fresh_vec b w = Array.init w (fun _ -> fresh b)

let name_net b n s = b.net_names <- (n, s) :: b.net_names

let input b name width =
  let bits = fresh_vec b width in
  b.ports <- { Circuit.port_name = name; dir = Circuit.In; bits } :: b.ports;
  Array.iteri (fun i n -> name_net b n (Printf.sprintf "%s[%d]" name i)) bits;
  bits

let output b name bits =
  b.ports <-
    { Circuit.port_name = name; dir = Circuit.Out; bits = Array.copy bits }
    :: b.ports

let gate_name b = function
  | Some n -> n
  | None ->
    b.gate_counter <- b.gate_counter + 1;
    Printf.sprintf "g%d" b.gate_counter

let gate_into b ?name kind ins out =
  b.gates <-
    { Circuit.kind; gname = gate_name b name; ins = Array.copy ins; out }
    :: b.gates

let gate b ?name kind ins =
  let out = fresh b in
  gate_into b ?name kind ins out;
  out

let inst b ?name sub conns =
  let iname =
    match name with
    | Some n -> n
    | None ->
      b.inst_counter <- b.inst_counter + 1;
      Printf.sprintf "u%d" b.inst_counter
  in
  b.insts <- { Circuit.iname; sub; conns } :: b.insts

let const0 = Circuit.false_net
let const1 = Circuit.true_net

let not_ b a = gate b Gate.Inv [| a |]
let and2 b x y = gate b Gate.And2 [| x; y |]
let or2 b x y = gate b Gate.Or2 [| x; y |]
let nand2 b x y = gate b Gate.Nand2 [| x; y |]
let nor2 b x y = gate b Gate.Nor2 [| x; y |]
let xor2 b x y = gate b Gate.Xor2 [| x; y |]
let mux2 b ~sel a0 a1 = gate b Gate.Mux2 [| a0; a1; sel |]
let dff b d = gate b Gate.Dff [| d |]
let dffe b ~en d = gate b Gate.Dffe [| d; en |]

let rec reduce op neutral b = function
  | [] -> neutral
  | [ n ] -> n
  | ns ->
    (* pair up for a balanced tree *)
    let rec pairs = function
      | a :: c :: rest -> op b a c :: pairs rest
      | [ a ] -> [ a ]
      | [] -> []
    in
    reduce op neutral b (pairs ns)

let and_reduce b ns = reduce and2 const1 b ns
let or_reduce b ns = reduce or2 const0 b ns

let mux_vec b ~sel a0 a1 =
  if Array.length a0 <> Array.length a1 then
    invalid_arg "Builder.mux_vec: width mismatch";
  Array.init (Array.length a0) (fun i -> mux2 b ~sel a0.(i) a1.(i))

let adder b ?(cin = const0) xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Builder.adder: width mismatch";
  let w = Array.length xs in
  let sums = Array.make w const0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let p = xor2 b xs.(i) ys.(i) in
    sums.(i) <- xor2 b p !carry;
    let g = and2 b xs.(i) ys.(i) in
    let pc = and2 b p !carry in
    carry := or2 b g pc
  done;
  (sums, !carry)

let finish b =
  Circuit.create ~name:b.name ~ports:(List.rev b.ports)
    ~gates:(List.rev b.gates) ~insts:(List.rev b.insts) ~net_count:b.next_net
    ~net_names:(List.rev b.net_names)
