(** Static timing on gate-level circuits.

    The "cost in speed" half of the paper's C3 claim is measured with a
    per-gate delay model: the critical path is the longest combinational
    path from a source (input port, flip-flop output or constant) to a
    sink (output port or flip-flop input), in units of the inverter delay
    tau. *)

exception Combinational_cycle

(** [critical_path ?delay c] flattens [c] and returns the worst path
    delay.  [delay] defaults to {!Gate.delay}.
    @raise Combinational_cycle when the combinational core is cyclic. *)
val critical_path : ?delay:(Gate.kind -> int) -> Circuit.t -> int

(** Arrival time of every net, same model; index by net id of the
    flattened circuit (also returned). *)
val arrival_times : ?delay:(Gate.kind -> int) -> Circuit.t -> Circuit.t * int array
