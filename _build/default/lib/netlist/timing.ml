exception Combinational_cycle

let arrival_times ?(delay = Gate.delay) c =
  let f = Circuit.flatten c in
  let arrival = Array.make f.Circuit.net_count 0 in
  (* dependency counts for combinational gates only *)
  let comb =
    List.filter (fun g -> not (Gate.is_sequential g.Circuit.kind)) f.Circuit.gates
  in
  let gates_by_input = Array.make f.Circuit.net_count [] in
  let pending = Hashtbl.create 64 in
  List.iteri
    (fun idx g ->
      Hashtbl.replace pending idx (Array.length g.Circuit.ins);
      Array.iter
        (fun n -> gates_by_input.(n) <- (idx, g) :: gates_by_input.(n))
        g.Circuit.ins)
    comb;
  (* sources: every net not driven by a combinational gate *)
  let comb_driven = Array.make f.Circuit.net_count false in
  List.iter (fun g -> comb_driven.(g.Circuit.out) <- true) comb;
  let queue = Queue.create () in
  for n = 0 to f.Circuit.net_count - 1 do
    if not comb_driven.(n) then Queue.add n queue
  done;
  let done_gates = ref 0 in
  let total_gates = List.length comb in
  (* zero-input gates (constants) have no trigger; settle them now *)
  List.iteri
    (fun idx g ->
      if Array.length g.Circuit.ins = 0 then begin
        Hashtbl.replace pending idx 0;
        incr done_gates;
        arrival.(g.Circuit.out) <- delay g.Circuit.kind;
        Queue.add g.Circuit.out queue
      end)
    comb;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter
      (fun (idx, g) ->
        let k = Hashtbl.find pending idx in
        if k = 1 then begin
          Hashtbl.replace pending idx 0;
          incr done_gates;
          let worst =
            Array.fold_left (fun m i -> max m arrival.(i)) 0 g.Circuit.ins
          in
          arrival.(g.Circuit.out) <- worst + delay g.Circuit.kind;
          Queue.add g.Circuit.out queue
        end
        else Hashtbl.replace pending idx (k - 1))
      gates_by_input.(n)
  done;
  if !done_gates <> total_gates then raise Combinational_cycle;
  (f, arrival)

let critical_path ?delay c =
  let f, arrival = arrival_times ?delay c in
  let worst = ref 0 in
  (* sinks: output ports and flip-flop inputs *)
  List.iter
    (fun p ->
      if p.Circuit.dir = Circuit.Out then
        Array.iter (fun n -> worst := max !worst arrival.(n)) p.Circuit.bits)
    f.Circuit.ports;
  List.iter
    (fun g ->
      if Gate.is_sequential g.Circuit.kind then
        Array.iter (fun n -> worst := max !worst arrival.(n)) g.Circuit.ins)
    f.Circuit.gates;
  !worst
