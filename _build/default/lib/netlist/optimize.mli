(** Netlist cleanup: the synthesizer's optimization pass.

    Rewrites a circuit (flattening it first) by repeatedly applying

    - constant folding (a gate whose inputs are constants becomes a
      constant; controlling constants simplify partially, e.g.
      [and(0,x) = 0], [or(0,x) = x], [mux(_,_,const)] selects a branch);
    - identities ([buf x = x], [inv (inv x) = x], [xor(x,x) = 0],
      [and(x,x) = x], [mux(a,a,s) = a]);
    - common-subexpression elimination (two gates of the same kind on the
      same inputs share one output; commutative inputs are normalized;
      applies to flip-flops too, merging identical registers);
    - dead-gate elimination (anything not reachable from an output).

    The pass preserves simulation behaviour exactly (enforced by tests)
    and is measured by the E2 ablation. *)

val simplify : Circuit.t -> Circuit.t
