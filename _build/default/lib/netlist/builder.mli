(** Imperative construction of circuits.

    A builder accumulates ports, gates and instances, then {!finish}
    validates and freezes the circuit.  Multi-bit buses are plain net
    arrays, index 0 = least significant bit. *)

type t

val create : string -> t

(** Declare an input port of the given width; returns its nets. *)
val input : t -> string -> int -> Circuit.net array

(** Declare an output port driven by existing nets. *)
val output : t -> string -> Circuit.net array -> unit

val fresh : t -> Circuit.net

val fresh_vec : t -> int -> Circuit.net array

val name_net : t -> Circuit.net -> string -> unit

(** [gate b kind ins] adds a gate on a fresh output net. *)
val gate : t -> ?name:string -> Gate.kind -> Circuit.net array -> Circuit.net

(** [gate_into b kind ins out] drives an existing net. *)
val gate_into :
  t -> ?name:string -> Gate.kind -> Circuit.net array -> Circuit.net -> unit

(** [inst b sub conns] instantiates a sub-circuit; every port of [sub]
    must appear in [conns]. *)
val inst :
  t -> ?name:string -> Circuit.t -> (string * Circuit.net array) list -> unit

val const0 : Circuit.net

val const1 : Circuit.net

(** Logic conveniences (each adds one gate). *)

val not_ : t -> Circuit.net -> Circuit.net

val and2 : t -> Circuit.net -> Circuit.net -> Circuit.net

val or2 : t -> Circuit.net -> Circuit.net -> Circuit.net

val nand2 : t -> Circuit.net -> Circuit.net -> Circuit.net

val nor2 : t -> Circuit.net -> Circuit.net -> Circuit.net

val xor2 : t -> Circuit.net -> Circuit.net -> Circuit.net

(** [mux2 b ~sel a0 a1] = if sel then a1 else a0. *)
val mux2 : t -> sel:Circuit.net -> Circuit.net -> Circuit.net -> Circuit.net

val dff : t -> Circuit.net -> Circuit.net

val dffe : t -> en:Circuit.net -> Circuit.net -> Circuit.net

(** Balanced AND / OR trees; empty input gives the neutral constant. *)

val and_reduce : t -> Circuit.net list -> Circuit.net

val or_reduce : t -> Circuit.net list -> Circuit.net

(** [mux_vec b ~sel a0 a1] muxes two equal-width buses bitwise. *)
val mux_vec :
  t -> sel:Circuit.net -> Circuit.net array -> Circuit.net array ->
  Circuit.net array

(** Ripple-carry add: returns (sum bus, carry out). *)
val adder :
  t -> ?cin:Circuit.net -> Circuit.net array -> Circuit.net array ->
  Circuit.net array * Circuit.net

(** [finish b] freezes and validates.
    @raise Invalid_argument on structural errors. *)
val finish : t -> Circuit.t
