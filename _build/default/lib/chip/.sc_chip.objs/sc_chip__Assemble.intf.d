lib/chip/assemble.mli: Cell Format Sc_layout
