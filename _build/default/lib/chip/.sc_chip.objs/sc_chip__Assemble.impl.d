lib/chip/assemble.ml: Cell Format Layer Lazy List Point Printf Rect Sc_geom Sc_layout Sc_tech Transform
