open Sc_geom
open Sc_tech
open Sc_layout

let pad_size = 80
let ring = 120 (* pad depth (100) + clearance to the core *)
let pitch = 100

let pad_cell =
  lazy
    (Cell.make ~name:"pad"
       ~ports:[ Cell.port "pin" Layer.Metal (Rect.make 36 100 44 100) ]
       [ Cell.box Layer.Metal (Rect.make 0 0 80 80)
       ; Cell.box Layer.Glass (Rect.make 10 10 70 70)
       ; Cell.box Layer.Metal (Rect.make 36 80 44 100)
       ])

let pad () = Lazy.force pad_cell

type assembly =
  { chip : Cell.t
  ; pads : int
  ; core_area : int
  ; chip_area : int
  ; overhead : float
  }

type side = Bottom | Right | Top | Left

let assemble ?(bind = []) ~name ~core ~pads () =
  if pads < 4 then invalid_arg "Assemble.assemble: need at least 4 pads";
  let core = Cell.translate_to_origin core in
  let core_w = Cell.width core and core_h = Cell.height core in
  let per_side s =
    let s = match s with Bottom -> 0 | Right -> 1 | Top -> 2 | Left -> 3 in
    (pads + 3 - s) / 4
  in
  let nb = per_side Bottom and nr = per_side Right in
  let nt = per_side Top and nl = per_side Left in
  let width =
    max (core_w + (2 * ring)) ((2 * ring) + (pitch * max nb nt))
  in
  let height =
    max (core_h + (2 * ring)) ((2 * ring) + (pitch * max nl nr))
  in
  let core_x = (width - core_w) / 2 and core_y = (height - core_h) / 2 in
  let p = pad () in
  let instances = ref [] in
  let wires = ref [] in
  let core_inst =
    Cell.instantiate ~name:"core" ~trans:(Transform.translation core_x core_y) core
  in
  instances := [ core_inst ];
  let core_port pname =
    match Cell.find_port_opt core pname with
    | Some port ->
      Rect.center (Rect.translate (Point.make core_x core_y) port.Cell.rect)
    | None ->
      invalid_arg (Printf.sprintf "Assemble.assemble: core has no port %S" pname)
  in
  let add_wire pts = wires := Cell.wire Layer.Metal ~width:4 pts :: !wires in
  let pad_index = ref 0 in
  let place side k =
    let idx = !pad_index in
    incr pad_index;
    let count, span =
      match side with
      | Bottom | Top -> ((match side with Bottom -> nb | _ -> nt), width)
      | Left | Right -> ((match side with Left -> nl | _ -> nr), height)
    in
    let offset = ring + (((span - (2 * ring)) - (count * pitch)) / 2) in
    let pos = offset + (k * pitch) + ((pitch - pad_size) / 2) in
    let trans =
      match side with
      | Bottom -> Transform.translation pos 0
      | Top -> Transform.make ~orient:Transform.MX (Point.make pos height)
      | Left -> Transform.make ~orient:Transform.R270 (Point.make 0 (pos + pad_size))
      | Right -> Transform.make ~orient:Transform.R90 (Point.make width pos)
    in
    let inst = Cell.instantiate ~name:(Printf.sprintf "pad%d" idx) ~trans p in
    instances := inst :: !instances;
    let pin =
      Rect.center (Cell.port_in_parent inst (Cell.find_port p "pin")).Cell.rect
    in
    (match List.assoc_opt idx bind with
    | Some pname ->
      let target = core_port pname in
      (* L-route: continue in the stub direction to the target's lane,
         then turn *)
      let mid =
        match side with
        | Bottom | Top -> Point.make pin.Point.x target.Point.y
        | Left | Right -> Point.make target.Point.x pin.Point.y
      in
      if Point.equal pin mid || Point.equal mid target then
        add_wire [ pin; target ]
      else add_wire [ pin; mid; target ]
    | None ->
      (* unbound: stub stops 6 lambda short of the core *)
      let stop =
        match side with
        | Bottom -> Point.make pin.Point.x (core_y - 6)
        | Top -> Point.make pin.Point.x (core_y + core_h + 6)
        | Left -> Point.make (core_x - 6) pin.Point.y
        | Right -> Point.make (core_x + core_w + 6) pin.Point.y
      in
      add_wire [ pin; stop ])
  in
  for k = 0 to nb - 1 do
    place Bottom k
  done;
  for k = 0 to nr - 1 do
    place Right k
  done;
  for k = 0 to nt - 1 do
    place Top k
  done;
  for k = 0 to nl - 1 do
    place Left k
  done;
  let ports =
    List.filter_map
      (fun (i : Cell.inst) ->
        if i.inst_name = "core" then None
        else
          Some
            { (Cell.port_in_parent i (Cell.find_port p "pin")) with
              Cell.pname = i.inst_name
            })
      !instances
  in
  let chip =
    Cell.make ~name ~ports ~instances:(List.rev !instances) (List.rev !wires)
  in
  let core_area = Cell.area core in
  let chip_area = Cell.area chip in
  { chip
  ; pads
  ; core_area
  ; chip_area
  ; overhead = float_of_int chip_area /. float_of_int (max core_area 1)
  }

let pp ppf a =
  Format.fprintf ppf "chip %s: %d pads, core %d, chip %d (x%.2f)"
    a.chip.Cell.name a.pads a.core_area a.chip_area a.overhead
