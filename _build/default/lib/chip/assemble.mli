(** Chip assembly: the parameterised pad frame of claim C6.

    One program assembles a complete chip around any core: bonding pads
    (metal squares with overglass openings) are distributed around the
    four sides, each with a connection stub pointing inward; pad wires
    run from each pad toward the core, either to a *bound* core port
    (they land on its metal and merge with it — the connection) or
    stopping 6 lambda short of the core as a pre-routed stub.

    The assembly is pure geometry generation — every output must pass
    DRC (tests enforce it) — and its cost model (pad-ring area overhead
    versus core area) is what experiment E6 sweeps. *)

open Sc_layout

(** The bonding pad: an 80x80 metal square with a 60x60 glass opening
    and an inward stub carrying the ["pin"] port on its outer stub end. *)
val pad : unit -> Cell.t

val pad_size : int

type assembly =
  { chip : Cell.t
  ; pads : int
  ; core_area : int
  ; chip_area : int
  ; overhead : float  (** chip_area / core_area *)
  }

(** [assemble ~name ~core ~pads ()] — distribute [pads] pads round-robin
    over the four sides.  [bind] maps pad index (counter-clockwise from
    the bottom-left) to a core port name; bound pads are wired to the
    port with an L-shaped metal wire.

    @raise Invalid_argument when [pads < 4] or a bound port is missing. *)
val assemble :
  ?bind:(int * string) list -> name:string -> core:Cell.t -> pads:int -> unit ->
  assembly

val pp : Format.formatter -> assembly -> unit
