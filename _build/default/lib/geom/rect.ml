type t = { xmin : int; ymin : int; xmax : int; ymax : int }

let make x0 y0 x1 y1 =
  { xmin = min x0 x1; ymin = min y0 y1; xmax = max x0 x1; ymax = max y0 y1 }

let of_center_wh ~cx ~cy ~w ~h =
  assert (w >= 0 && h >= 0);
  (* Centre coordinates are doubled-grid safe only for even w/h; we bias the
     extra unit to the positive side so that generators stay deterministic. *)
  let x0 = cx - (w / 2) and y0 = cy - (h / 2) in
  { xmin = x0; ymin = y0; xmax = x0 + w; ymax = y0 + h }

let of_corner_wh ~x ~y ~w ~h =
  assert (w >= 0 && h >= 0);
  { xmin = x; ymin = y; xmax = x + w; ymax = y + h }

let width r = r.xmax - r.xmin
let height r = r.ymax - r.ymin
let area r = width r * height r
let is_empty r = width r = 0 || height r = 0

let center r =
  Point.make ((r.xmin + r.xmax) / 2) ((r.ymin + r.ymax) / 2)

let corners r = (Point.make r.xmin r.ymin, Point.make r.xmax r.ymax)

let translate (p : Point.t) r =
  { xmin = r.xmin + p.x
  ; ymin = r.ymin + p.y
  ; xmax = r.xmax + p.x
  ; ymax = r.ymax + p.y
  }

let inflate d r =
  let x0 = r.xmin - d and x1 = r.xmax + d in
  let y0 = r.ymin - d and y1 = r.ymax + d in
  if x0 <= x1 && y0 <= y1 then { xmin = x0; ymin = y0; xmax = x1; ymax = y1 }
  else
    let c = center r in
    { xmin = c.Point.x; ymin = c.Point.y; xmax = c.Point.x; ymax = c.Point.y }

let overlaps a b =
  a.xmin < b.xmax && b.xmin < a.xmax && a.ymin < b.ymax && b.ymin < a.ymax

let touches_or_overlaps a b =
  a.xmin <= b.xmax && b.xmin <= a.xmax && a.ymin <= b.ymax && b.ymin <= a.ymax

let contains_point r (p : Point.t) =
  r.xmin <= p.x && p.x <= r.xmax && r.ymin <= p.y && p.y <= r.ymax

let contains outer inner =
  outer.xmin <= inner.xmin && outer.ymin <= inner.ymin
  && inner.xmax <= outer.xmax && inner.ymax <= outer.ymax

let inter a b =
  if overlaps a b then
    Some
      { xmin = max a.xmin b.xmin
      ; ymin = max a.ymin b.ymin
      ; xmax = min a.xmax b.xmax
      ; ymax = min a.ymax b.ymax
      }
  else None

let union_bbox a b =
  { xmin = min a.xmin b.xmin
  ; ymin = min a.ymin b.ymin
  ; xmax = max a.xmax b.xmax
  ; ymax = max a.ymax b.ymax
  }

let separation a b =
  let gap lo1 hi1 lo2 hi2 = max 0 (max (lo2 - hi1) (lo1 - hi2)) in
  let dx = gap a.xmin a.xmax b.xmin b.xmax in
  let dy = gap a.ymin a.ymax b.ymin b.ymax in
  max dx dy

let equal a b =
  a.xmin = b.xmin && a.ymin = b.ymin && a.xmax = b.xmax && a.ymax = b.ymax

let compare a b =
  let c = Int.compare a.xmin b.xmin in
  if c <> 0 then c
  else
    let c = Int.compare a.ymin b.ymin in
    if c <> 0 then c
    else
      let c = Int.compare a.xmax b.xmax in
      if c <> 0 then c else Int.compare a.ymax b.ymax

let pp ppf r =
  Format.fprintf ppf "[%d,%d..%d,%d]" r.xmin r.ymin r.xmax r.ymax

let to_string r = Format.asprintf "%a" pp r
