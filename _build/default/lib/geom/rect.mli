(** Axis-aligned integer rectangles.

    Rectangles are kept normalized: [xmin <= xmax] and [ymin <= ymax].
    A rectangle with zero width or height is degenerate; [is_empty]
    reports it.  Most of the layout database is built from rectangles,
    as was usual for NMOS Mead–Conway artwork. *)

type t = private { xmin : int; ymin : int; xmax : int; ymax : int }

(** [make x0 y0 x1 y1] normalizes the corner order. *)
val make : int -> int -> int -> int -> t

(** [of_center_wh ~cx ~cy ~w ~h] builds the rectangle centred at
    [(cx, cy)].  Width and height must be non-negative. *)
val of_center_wh : cx:int -> cy:int -> w:int -> h:int -> t

(** [of_corner_wh ~x ~y ~w ~h] builds the rectangle whose lower-left
    corner is [(x, y)]. *)
val of_corner_wh : x:int -> y:int -> w:int -> h:int -> t

val width : t -> int

val height : t -> int

val area : t -> int

val is_empty : t -> bool

val center : t -> Point.t

val corners : t -> Point.t * Point.t
(** Lower-left and upper-right corners. *)

val translate : Point.t -> t -> t

(** [inflate d r] grows the rectangle by [d] on every side ([d] may be
    negative; the result is clamped to a degenerate rectangle at the
    centre rather than denormalizing). *)
val inflate : int -> t -> t

val overlaps : t -> t -> bool
(** Strict interior overlap: touching edges do not count. *)

val touches_or_overlaps : t -> t -> bool

val contains_point : t -> Point.t -> bool

val contains : t -> t -> bool
(** [contains outer inner]. *)

val inter : t -> t -> t option
(** Intersection, [None] if the interiors are disjoint. *)

val union_bbox : t -> t -> t

(** [separation a b] is the Euclidean-free rectilinear separation used by
    design-rule checking: the maximum of the x-gap and y-gap between the
    two rectangles, 0 when they touch or overlap. *)
val separation : t -> t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
