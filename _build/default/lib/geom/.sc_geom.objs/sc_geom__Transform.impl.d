lib/geom/transform.ml: Format Point Rect
