lib/geom/path.ml: Format List Point Rect Transform
