lib/geom/transform.mli: Format Point Rect
