lib/geom/rect.ml: Format Int Point
