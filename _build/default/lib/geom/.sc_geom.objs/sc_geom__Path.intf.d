lib/geom/path.mli: Format Point Rect Transform
