type orient = R0 | R90 | R180 | R270 | MX | MX90 | MY | MY90

type t = { orient : orient; shift : Point.t }

let identity = { orient = R0; shift = Point.origin }
let make ?(orient = R0) shift = { orient; shift }
let translation x y = { orient = R0; shift = Point.make x y }

(* Each orientation is an orthogonal matrix [| a b; c d |] acting as
   (x, y) -> (a*x + b*y, c*x + d*y).  Composition and inversion go through
   this representation, which keeps the eight-element group closed without a
   64-entry case table. *)
let matrix = function
  | R0 -> (1, 0, 0, 1)
  | R90 -> (0, -1, 1, 0)
  | R180 -> (-1, 0, 0, -1)
  | R270 -> (0, 1, -1, 0)
  | MX -> (1, 0, 0, -1)
  | MY -> (-1, 0, 0, 1)
  | MX90 -> (0, 1, 1, 0)
  | MY90 -> (0, -1, -1, 0)

let of_matrix = function
  | 1, 0, 0, 1 -> R0
  | 0, -1, 1, 0 -> R90
  | -1, 0, 0, -1 -> R180
  | 0, 1, -1, 0 -> R270
  | 1, 0, 0, -1 -> MX
  | -1, 0, 0, 1 -> MY
  | 0, 1, 1, 0 -> MX90
  | 0, -1, -1, 0 -> MY90
  | _ -> assert false

let apply_orient o (p : Point.t) =
  let a, b, c, d = matrix o in
  Point.make ((a * p.Point.x) + (b * p.Point.y)) ((c * p.Point.x) + (d * p.Point.y))

let apply t p = Point.add (apply_orient t.orient p) t.shift

let apply_rect t r =
  let lo, hi = Rect.corners r in
  let p = apply t lo and q = apply t hi in
  Rect.make p.Point.x p.Point.y q.Point.x q.Point.y

let orient_compose o2 o1 =
  let a2, b2, c2, d2 = matrix o2 in
  let a1, b1, c1, d1 = matrix o1 in
  of_matrix
    ( (a2 * a1) + (b2 * c1)
    , (a2 * b1) + (b2 * d1)
    , (c2 * a1) + (d2 * c1)
    , (c2 * b1) + (d2 * d1) )

let orient_invert o =
  let a, b, c, d = matrix o in
  of_matrix (a, c, b, d)

let compose outer inner =
  { orient = orient_compose outer.orient inner.orient
  ; shift = Point.add (apply_orient outer.orient inner.shift) outer.shift
  }

let invert t =
  let o = orient_invert t.orient in
  { orient = o; shift = Point.neg (apply_orient o t.shift) }

let equal a b = a.orient = b.orient && Point.equal a.shift b.shift

let orient_to_string = function
  | R0 -> "R0"
  | R90 -> "R90"
  | R180 -> "R180"
  | R270 -> "R270"
  | MX -> "MX"
  | MX90 -> "MX90"
  | MY -> "MY"
  | MY90 -> "MY90"

let orient_of_string = function
  | "R0" -> Some R0
  | "R90" -> Some R90
  | "R180" -> Some R180
  | "R270" -> Some R270
  | "MX" -> Some MX
  | "MX90" -> Some MX90
  | "MY" -> Some MY
  | "MY90" -> Some MY90
  | _ -> None

let all_orients = [ R0; R90; R180; R270; MX; MX90; MY; MY90 ]

let pp ppf t =
  Format.fprintf ppf "%s%a" (orient_to_string t.orient) Point.pp t.shift
