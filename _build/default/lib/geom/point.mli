(** Integer points on the lambda grid.

    All geometry in the silicon compiler lives on an integer grid whose unit
    is the technology's lambda (Mead–Conway scalable rules). *)

type t = { x : int; y : int }

val make : int -> int -> t

val origin : t

val add : t -> t -> t

val sub : t -> t -> t

(** [scale k p] multiplies both coordinates by [k]. *)
val scale : int -> t -> t

(** [neg p] is [sub origin p]. *)
val neg : t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

(** Manhattan (L1) distance. *)
val manhattan : t -> t -> int

(** [colinear_axis p q] is [Some `H] when the two points share a y
    coordinate, [Some `V] when they share an x coordinate (a degenerate
    point is reported as [`H]), and [None] for a diagonal pair. *)
val colinear_axis : t -> t -> [ `H | `V ] option

val pp : Format.formatter -> t -> unit

val to_string : t -> string
