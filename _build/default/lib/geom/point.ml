type t = { x : int; y : int }

let make x y = { x; y }
let origin = { x = 0; y = 0 }
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }
let scale k p = { x = k * p.x; y = k * p.y }
let neg p = sub origin p
let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c else Int.compare a.y b.y

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)

let colinear_axis a b =
  if a.y = b.y then Some `H
  else if a.x = b.x then Some `V
  else None

let pp ppf p = Format.fprintf ppf "(%d,%d)" p.x p.y
let to_string p = Format.asprintf "%a" pp p
