(** Manhattan wire paths.

    A path is a centre-line through a list of points plus a width; wires in
    the layout are paths.  Only Manhattan (axis-parallel) segments can be
    converted to rectangles — the conversion pads each segment by half the
    width so that consecutive segments join without notches, matching CIF
    "wire" semantics for rectilinear wires. *)

type t = { width : int; points : Point.t list }

val make : width:int -> Point.t list -> t

(** [is_manhattan p] is true when every segment is axis-parallel. *)
val is_manhattan : t -> bool

(** Total centre-line length. *)
val length : t -> int

(** [to_rects p] converts a Manhattan path to covering rectangles.

    @raise Invalid_argument on a non-Manhattan segment or an odd width. *)
val to_rects : t -> Rect.t list

val translate : Point.t -> t -> t

val transform : Transform.t -> t -> t

val bbox : t -> Rect.t option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
