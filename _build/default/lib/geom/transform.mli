(** Manhattan transformations.

    A layout instance is placed by one of the eight Manhattan orientations
    (the symmetry group of the square) followed by a translation.  This is
    the transformation model of CIF symbol calls (rotate by multiples of 90
    degrees, mirror in x or y, translate). *)

(** The eight orientations.  [R0] is the identity; [R90] rotates 90 degrees
    counter-clockwise; [MX] mirrors across the x axis (negates y); [MY]
    mirrors across the y axis (negates x); [MX90]/[MY90] are the mirrors
    followed by a 90-degree rotation. *)
type orient = R0 | R90 | R180 | R270 | MX | MX90 | MY | MY90

type t = { orient : orient; shift : Point.t }

val identity : t

val make : ?orient:orient -> Point.t -> t

val translation : int -> int -> t

(** [apply t p] transforms the point: orientation first, then shift. *)
val apply : t -> Point.t -> Point.t

val apply_rect : t -> Rect.t -> Rect.t

(** [compose outer inner] is the transform equivalent to applying [inner]
    first and then [outer]: [apply (compose outer inner) p =
    apply outer (apply inner p)]. *)
val compose : t -> t -> t

val invert : t -> t

val orient_compose : orient -> orient -> orient

val orient_invert : orient -> orient

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val orient_to_string : orient -> string

val orient_of_string : string -> orient option

val all_orients : orient list
