type t = { width : int; points : Point.t list }

let make ~width points =
  if width <= 0 then invalid_arg "Path.make: width must be positive";
  { width; points }

let rec segments = function
  | a :: (b :: _ as rest) -> (a, b) :: segments rest
  | [ _ ] | [] -> []

let is_manhattan p =
  List.for_all
    (fun (a, b) -> Point.colinear_axis a b <> None)
    (segments p.points)

let length p =
  List.fold_left (fun acc (a, b) -> acc + Point.manhattan a b) 0 (segments p.points)

let to_rects p =
  if p.width mod 2 <> 0 then
    invalid_arg "Path.to_rects: width must be even (half-width padding)";
  let h = p.width / 2 in
  let seg_rect (a : Point.t) (b : Point.t) =
    match Point.colinear_axis a b with
    | Some `H ->
      Rect.make (min a.Point.x b.Point.x - h) (a.Point.y - h)
        (max a.Point.x b.Point.x + h) (a.Point.y + h)
    | Some `V ->
      Rect.make (a.Point.x - h) (min a.Point.y b.Point.y - h)
        (a.Point.x + h) (max a.Point.y b.Point.y + h)
    | None -> invalid_arg "Path.to_rects: non-Manhattan segment"
  in
  match p.points with
  | [] -> []
  | [ pt ] ->
    [ Rect.make (pt.Point.x - h) (pt.Point.y - h) (pt.Point.x + h) (pt.Point.y + h) ]
  | pts -> List.map (fun (a, b) -> seg_rect a b) (segments pts)

let translate d p = { p with points = List.map (Point.add d) p.points }

let transform t p = { p with points = List.map (Transform.apply t) p.points }

let bbox p =
  match to_rects p with
  | [] -> None
  | r :: rs -> Some (List.fold_left Rect.union_bbox r rs)

let equal a b =
  a.width = b.width
  && List.length a.points = List.length b.points
  && List.for_all2 Point.equal a.points b.points

let pp ppf p =
  Format.fprintf ppf "path(w=%d;%a)" p.width
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "-") Point.pp)
    p.points
