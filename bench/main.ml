(* The benchmark harness.

   Gray's paper (DAC 1979) is a position paper with no tables or figures,
   so the "evaluation" this harness regenerates is the set of checkable
   claims C1..C7 catalogued in DESIGN.md, as experiments E1..E7, plus the
   ablations of our own design choices and a set of Bechamel
   micro-benchmarks of the compiler's hot paths.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- e3
   Options:               e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e13 e14 e15 e16 e17
                          profile ablate micro all
   (e10 and profile are synonyms: the stage-cost profile of the full
   behavioral path, regenerating the EXPERIMENTS.md E10 table.) *)

let section title claim =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  Printf.printf "claim: %s\n\n" claim

let ratio a b = float_of_int a /. float_of_int (max b 1)

(* cache directories are sharded into subdirectories now; a flat
   readdir+remove no longer clears them *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* E1: compiled PDP-8 vs hand design (claim C4)                        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1: compiled PDP-8 vs hand design"
    "C4 (ref [6]): a PDP-8 compiled from ISP lands within 50% of a \
     commercial design's chip count";
  let design = Sc_core.Designs.parse Sc_core.Designs.pdp8_src in
  let compiled = Sc_synth.Synth.gates design in
  let hand = Sc_core.Designs.hand_pdp8 () in
  let hs = Sc_netlist.Circuit.stats hand in
  let cs = compiled.Sc_synth.Synth.stats in
  let ok_c =
    Sc_synth.Synth.verify_against_interp design compiled.Sc_synth.Synth.circuit
      120 Sc_core.Designs.pdp8_stim
  in
  let ok_h =
    Sc_synth.Synth.verify_against_interp design hand 120 Sc_core.Designs.pdp8_stim
  in
  Printf.printf "both implement the ISA (verified against interpreter): %b/%b\n\n"
    ok_c ok_h;
  Printf.printf "%-24s %10s %10s %8s\n" "metric" "compiled" "hand" "ratio";
  let row name a b = Printf.printf "%-24s %10d %10d %8.2f\n" name a b (ratio a b) in
  row "gates" cs.Sc_netlist.Circuit.gate_total hs.Sc_netlist.Circuit.gate_total;
  row "flip-flops" cs.Sc_netlist.Circuit.flipflops hs.Sc_netlist.Circuit.flipflops;
  row "transistors" cs.Sc_netlist.Circuit.transistors hs.Sc_netlist.Circuit.transistors;
  row "cell area (sq lambda)" compiled.Sc_synth.Synth.cell_area
    (Sc_stdcell.Library.circuit_cell_area hand);
  row "critical path (tau)" compiled.Sc_synth.Synth.critical_path
    (Sc_netlist.Timing.critical_path hand);
  Printf.printf
    "\npaper: ratio <= 1.5; measured transistor ratio %.2f (shape holds: same \
     order, compiled pays a bounded premium)\n"
    (ratio cs.Sc_netlist.Circuit.transistors hs.Sc_netlist.Circuit.transistors)

(* ------------------------------------------------------------------ *)
(* E2: automatic construction at a cost in space and speed (claim C3)  *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2: synthesis cost in space and speed across the suite"
    "C3: RTL compilation constructs hardware automatically, 'although at a \
     cost in space and speed'";
  Printf.printf "%-10s %12s %12s %7s %9s %9s %7s\n" "design" "synth area"
    "hand area" "ratio" "synth tau" "hand tau" "ratio";
  List.iter
    (fun (name, src, hand, _stim, _cycles) ->
      let d = Sc_core.Designs.parse src in
      let r = Sc_synth.Synth.gates d in
      match hand with
      | Some h ->
        let ha = Sc_stdcell.Library.circuit_cell_area h in
        let hp = Sc_netlist.Timing.critical_path h in
        Printf.printf "%-10s %12d %12d %7.2f %9d %9d %7.2f\n" name
          r.Sc_synth.Synth.cell_area ha
          (ratio r.Sc_synth.Synth.cell_area ha)
          r.Sc_synth.Synth.critical_path hp
          (ratio r.Sc_synth.Synth.critical_path hp)
      | None ->
        Printf.printf "%-10s %12d %12s %7s %9d %9s %7s\n" name
          r.Sc_synth.Synth.cell_area "-" "-" r.Sc_synth.Synth.critical_path "-"
          "-")
    (Sc_core.Designs.all ());
  Printf.printf
    "\npaper: automatic construction costs space (ratios above 1.0); the \
     ratios above show the premium and where hand work still wins\n"

(* ------------------------------------------------------------------ *)
(* E3: memories and PLAs programmed for specific functions (claim C2)  *)
(* ------------------------------------------------------------------ *)

let random_cover ~seed ~ninputs ~noutputs ~terms =
  let rng = Random.State.make [| seed |] in
  let cubes =
    List.init terms (fun _ ->
        let lits =
          Array.init ninputs (fun _ ->
              match Random.State.int rng 3 with
              | 0 -> Sc_logic.Cube.Zero
              | 1 -> Sc_logic.Cube.One
              | _ -> Sc_logic.Cube.Dash)
        in
        Sc_logic.Cube.make lits (1 + Random.State.int rng ((1 lsl noutputs) - 1)))
  in
  Sc_logic.Cover.make ~ninputs ~noutputs cubes

let e3 () =
  section "E3: PLA and ROM area as a function of the programmed function"
    "C2: regular blocks such as memories and PLAs are programmed for \
     specific functions";
  Printf.printf "PLA area sweep (random covers, area in sq lambda):\n";
  Printf.printf "%4s %4s %6s | %10s %10s\n" "in" "out" "terms" "area" "predicted";
  List.iter
    (fun (n, m, t) ->
      let cover = random_cover ~seed:(n + (7 * m) + t) ~ninputs:n ~noutputs:m ~terms:t in
      let pla = Sc_pla.Generator.generate ~minimize:false cover in
      Printf.printf "%4d %4d %6d | %10d %10d\n" n m t
        (Sc_layout.Cell.area pla.Sc_pla.Generator.layout)
        (Sc_pla.Generator.predicted_area ~ninputs:n ~noutputs:m ~terms:t))
    [ (2, 2, 4); (4, 4, 8); (4, 8, 16); (8, 8, 16); (8, 8, 32); (8, 16, 64) ];
  Printf.printf "\nminimization effect on real functions (terms, area):\n";
  let minimization_row name cover =
    let raw = Sc_pla.Generator.generate ~minimize:false cover in
    let mn = Sc_pla.Generator.generate ~minimize:true cover in
    Printf.printf "%-12s raw %3d terms %8d   minimized %3d terms %8d  (%.2fx)\n"
      name raw.Sc_pla.Generator.rows
      (Sc_layout.Cell.area raw.Sc_pla.Generator.layout)
      mn.Sc_pla.Generator.rows
      (Sc_layout.Cell.area mn.Sc_pla.Generator.layout)
      (ratio
         (Sc_layout.Cell.area raw.Sc_pla.Generator.layout)
         (Sc_layout.Cell.area mn.Sc_pla.Generator.layout))
  in
  let seven_seg =
    let table =
      [| 0b1111110; 0b0110000; 0b1101101; 0b1111001; 0b0110011; 0b1011011
       ; 0b1011111; 0b1110000; 0b1111111; 0b1111011
      |]
    in
    let cubes = ref [] in
    for v = 0 to 9 do
      let bits = Array.init 4 (fun i -> v land (1 lsl i) <> 0) in
      if table.(v) <> 0 then
        cubes := Sc_logic.Cube.minterm bits table.(v) :: !cubes
    done;
    Sc_logic.Cover.make ~ninputs:4 ~noutputs:7 !cubes
  in
  minimization_row "7-segment" seven_seg;
  let adder_cover =
    Sc_logic.Cover.of_function ~ninputs:6 ~noutputs:4 (fun bits ->
        let a =
          (if bits.(0) then 1 else 0)
          lor (if bits.(1) then 2 else 0)
          lor if bits.(2) then 4 else 0
        in
        let b =
          (if bits.(3) then 1 else 0)
          lor (if bits.(4) then 2 else 0)
          lor if bits.(5) then 4 else 0
        in
        let s = a + b in
        Array.init 4 (fun i -> s land (1 lsl i) <> 0))
  in
  minimization_row "adder3+3" adder_cover;
  Printf.printf "\nROM area sweep (words x bits -> area, area/bit):\n";
  List.iter
    (fun (words, bits) ->
      let contents =
        Array.init words (fun i -> (i * 37) land ((1 lsl bits) - 1) lor 1)
      in
      let rom = Sc_rom.Rom.generate ~bits contents in
      let a = Sc_layout.Cell.area (Sc_rom.Rom.layout rom) in
      Printf.printf "  %3dx%-2d -> %9d   %7.1f\n" words bits a
        (float_of_int a /. float_of_int (words * bits)))
    [ (4, 4); (8, 4); (8, 8); (16, 8); (32, 8); (64, 8) ];
  Printf.printf
    "\npaper: one generator program covers every size; area tracks the \
     personality exactly (area = predicted) and minimization buys real area\n"

(* ------------------------------------------------------------------ *)
(* E4: structured wiring management (claim C5)                         *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4: structured vs unstructured placement (wiring management)"
    "C5: structured design with regular structures simplifies wiring \
     management";
  Printf.printf "%-10s | %10s %10s %8s | %9s %9s %8s\n" "design" "rnd hpwl"
    "ord hpwl" "saving" "rnd chan" "ord chan" "saving";
  List.iter
    (fun (name, src, _, _, _) ->
      let d = Sc_core.Designs.parse src in
      let c = (Sc_synth.Synth.gates d).Sc_synth.Synth.circuit in
      let p = Sc_place.Placer.problem_of_circuit c in
      let rnd = Sc_place.Placer.random p in
      let ord =
        Sc_place.Placer.improve ~iters:3000 (Sc_place.Placer.ordered p)
      in
      let rh = Sc_place.Placer.hpwl rnd and oh = Sc_place.Placer.hpwl ord in
      (* routed channels: the real router assigns tracks to the nets
         crossing each row boundary *)
      let rc = (Sc_place.Placer.route_channels rnd).Sc_place.Placer.total_height in
      let oc = (Sc_place.Placer.route_channels ord).Sc_place.Placer.total_height in
      Printf.printf "%-10s | %10d %10d %7.0f%% | %9d %9d %7.0f%%\n" name rh oh
        (100. *. (1. -. (float_of_int oh /. float_of_int (max rh 1))))
        rc oc
        (100. *. (1. -. (float_of_int oc /. float_of_int (max rc 1)))))
    (Sc_core.Designs.all ());
  Printf.printf
    "\npaper: structure pays — both the wirelength estimate (HPWL) and the \
     actually routed channel height fall in every row\n"

(* ------------------------------------------------------------------ *)
(* E5: structural vs behavioral compilation (claim C7)                 *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5: the two definitions of silicon compilation, compared"
    "C7: structural (graphic-language) and behavioral definitions coexist; \
     their costs and benefits differ";
  Printf.printf "%-10s %6s | %21s | %21s | %21s\n" "" "ISP"
    "behavioral: gates" "behavioral: PLA" "structural: hand";
  Printf.printf "%-10s %6s | %10s %10s | %10s %10s | %10s %10s\n" "design"
    "bytes" "area" "tau" "area" "tau" "area" "tau";
  List.iter
    (fun (name, src, hand, _, _) ->
      let d = Sc_core.Designs.parse src in
      let g = Sc_synth.Synth.gates d in
      let pla_cells =
        match Sc_synth.Synth.pla_fsm d with
        | r, _ -> Some (r.Sc_synth.Synth.cell_area, r.Sc_synth.Synth.critical_path)
        | exception Sc_pipeline.Diag.Error _ -> None
      in
      let hand_cells =
        Option.map
          (fun h ->
            ( Sc_stdcell.Library.circuit_cell_area h
            , Sc_netlist.Timing.critical_path h ))
          hand
      in
      let cell = function
        | Some (a, t) -> Printf.sprintf "%10d %10d" a t
        | None -> Printf.sprintf "%10s %10s" "-" "-"
      in
      Printf.printf "%-10s %6d | %10d %10d | %s | %s\n" name
        (String.length src) g.Sc_synth.Synth.cell_area
        g.Sc_synth.Synth.critical_path (cell pla_cells) (cell hand_cells))
    (Sc_core.Designs.all ());
  Printf.printf
    "\npaper: behavioral descriptions are the cheapest to write; structural \
     effort buys area and speed — both effects visible above\n"

(* ------------------------------------------------------------------ *)
(* E6: parameterised chip assembly (claim C6)                          *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6: one parameterised program assembles every chip"
    "C6: parameterised specification pays off in the task of chip assembly";
  Printf.printf "%-10s %5s %12s %12s %9s %6s\n" "core" "pads" "core area"
    "chip area" "overhead" "DRC";
  List.iter
    (fun (name, src, pads) ->
      let c =
        (Sc_synth.Synth.gates (Sc_core.Designs.parse src)).Sc_synth.Synth.circuit
      in
      let core = Sc_core.Compiler.layout_of_circuit ~name c in
      let a = Sc_chip.Assemble.assemble ~name:(name ^ "_chip") ~core ~pads () in
      Printf.printf "%-10s %5d %12d %12d %9.2f %6s\n" name pads
        a.Sc_chip.Assemble.core_area a.Sc_chip.Assemble.chip_area
        a.Sc_chip.Assemble.overhead
        (if Sc_drc.Checker.is_clean a.Sc_chip.Assemble.chip then "clean"
         else "FAIL"))
    [ ("gray", Sc_core.Designs.gray_src, 4)
    ; ("counter", Sc_core.Designs.counter_src, 8)
    ; ("alu4", Sc_core.Designs.alu_src, 12)
    ; ("pdp8", Sc_core.Designs.pdp8_src, 16)
    ];
  Printf.printf
    "\npaper: the assembly program is written once; overhead falls as cores \
     grow (top to bottom of the table)\n"

(* ------------------------------------------------------------------ *)
(* E7: textual description to manufacturing data (claim C1)            *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7: end-to-end — text in, CIF out, DRC clean, roundtrip exact"
    "C1: design tools take a completely textual description and translate \
     it to layout data";
  Printf.printf "%-10s %-6s %10s %6s %6s %10s\n" "design" "path" "CIF bytes"
    "DRC" "exact" "rects";
  let check name path cell =
    let cif = Sc_cif.Emit.to_string cell in
    Printf.printf "%-10s %-6s %10d %6s %6b %10d\n" name path
      (String.length cif)
      (if Sc_drc.Checker.is_clean cell then "clean" else "FAIL")
      (Sc_cif.Elaborate.roundtrip_ok cell)
      (Sc_layout.Cell.flat_rect_count cell)
  in
  List.iter
    (fun (name, src, _, _, _) ->
      let d = Sc_core.Designs.parse src in
      let g = Sc_synth.Synth.gates d in
      check name "gates"
        (Sc_core.Compiler.layout_of_circuit ~name g.Sc_synth.Synth.circuit);
      match Sc_synth.Synth.pla_fsm d with
      | _, pla -> check name "pla" pla.Sc_pla.Generator.layout
      | exception Sc_pipeline.Diag.Error _ -> ())
    (Sc_core.Designs.all ());
  (match
     Sc_lang.Lang.compile ~args:[ 8; 4 ]
       {|
cell stage() { inst dff() at (0,0); inst inv() at (width(dff()),0); }
cell main(n, m) {
  for j = 0 to m-1 { for i = 0 to n-1 { inst stage() at (i*(width(stage())), j*60); } }
}
|}
   with
  | Ok cell -> check "shift8x4" "lang" cell
  | Error e ->
    Printf.printf "lang compile failed: %s\n" (Sc_lang.Lang.error_to_string e));
  Printf.printf "\npaper: every row must be clean and exact — they are\n"


(* ------------------------------------------------------------------ *)
(* E8: verification by simulation — of the artwork itself              *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8: the artwork itself is verified by simulation"
    "the paper's closing question: behavioral descriptions exist 'so that \
     verification by simulation can be carried out' — here the simulation \
     runs on the extracted mask geometry";
  Printf.printf "%-16s %8s %8s %10s %8s\n" "artwork" "devices" "loads"
    "extraction" "computes";
  let show name cell inputs spec =
    let net = Sc_extract.Extractor.extract cell in
    let ok =
      Sc_extract.Switch.verify_logic cell ~inputs ~outputs:[ "y" ] spec
    in
    Printf.printf "%-16s %8d %8d %10s %8b\n" name
      (List.length net.Sc_extract.Extractor.devices)
      (List.length
         (List.filter
            (fun d -> d.Sc_extract.Extractor.depletion)
            net.Sc_extract.Extractor.devices))
      (if net.Sc_extract.Extractor.warnings = [] then "clean" else "WARN")
      ok
  in
  show "inv" (Sc_stdcell.Nmos.inv ()) [ "a" ] (fun b -> [| not b.(0) |]);
  show "nand2" (Sc_stdcell.Nmos.nand 2) [ "a"; "b" ] (fun b ->
      [| not (b.(0) && b.(1)) |]);
  show "nand3" (Sc_stdcell.Nmos.nand 3) [ "a"; "b"; "c" ] (fun b ->
      [| not (b.(0) && b.(1) && b.(2)) |]);
  show "nor2" (Sc_stdcell.Nmos.nor2 ()) [ "a"; "b" ] (fun b ->
      [| not (b.(0) || b.(1)) |]);
  show "routed chain x5" (Sc_stdcell.Nmos.routed_chain 5) [ "a" ] (fun b ->
      [| not b.(0) |]);
  (* the traffic PLA: drive the dual-rail inputs, check every output
     column against the cover (NOR-plane columns carry the complement) *)
  let cover =
    Sc_logic.Cover.of_rows ~ninputs:2 ~noutputs:6
      [ ("00", "100001"); ("01", "010001"); ("10", "001100"); ("11", "001010") ]
  in
  let pla = Sc_pla.Generator.generate ~minimize:false cover in
  let net = Sc_extract.Extractor.extract pla.Sc_pla.Generator.layout in
  let node = Sc_extract.Extractor.node_of net in
  let ok = ref true in
  for v = 0 to 3 do
    let bits = Array.init 2 (fun i -> v land (1 lsl i) <> 0) in
    let inputs =
      List.concat
        (List.init 2 (fun i ->
             [ ( node (Printf.sprintf "in%d_t" i)
               , if bits.(i) then Sc_extract.Switch.V1 else Sc_extract.Switch.V0 )
             ; ( node (Printf.sprintf "in%d_c" i)
               , if bits.(i) then Sc_extract.Switch.V0 else Sc_extract.Switch.V1 )
             ]))
    in
    let values =
      Sc_extract.Switch.simulate net ~vdd:(node "vdd") ~gnd:(node "gnd") ~inputs
    in
    let expected = Sc_logic.Cover.eval cover bits in
    for o = 0 to 5 do
      let want =
        if expected.(o) then Sc_extract.Switch.V0 else Sc_extract.Switch.V1
      in
      if values.(node (Printf.sprintf "out%d" o)) <> want then ok := false
    done
  done;
  Printf.printf "%-16s %8d %8d %10s %8b\n" "traffic PLA"
    (List.length net.Sc_extract.Extractor.devices)
    (List.length
       (List.filter
          (fun d -> d.Sc_extract.Extractor.depletion)
          net.Sc_extract.Extractor.devices))
    (if net.Sc_extract.Extractor.warnings = [] then "clean" else "WARN")
    !ok;
  Printf.printf
    "\nevery device in the masks is recovered by extraction (channels, \
     buried gate ties, depletion loads) and the geometry computes its \
     specification at switch level\n"

(* ------------------------------------------------------------------ *)
(* E9: formal equivalence — certifying the stages, not sampling them    *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9: formal equivalence checking across the compilation stages"
    "simulation samples the input space; the BDD engine covers it — \
     synthesis vs hand netlists, the optimizer, two-level minimization \
     and the mask artwork are each certified, and a single injected \
     fault yields a concrete replayable counterexample";
  let open Sc_equiv in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, (Sys.time () -. t0) *. 1000.)
  in
  Printf.printf "%-34s %7s %9s %10s %8s\n" "pair" "inputs" "bdd nodes"
    "verdict" "ms";
  let row name ~inputs man verdict ms =
    Printf.printf "%-34s %7d %9d %10s %8.1f\n" name inputs
      (Bdd.node_count man)
      (match verdict with
      | Checker.Equivalent -> "EQUIV"
      | Checker.Not_equivalent _ -> "DIFFER")
      ms
  in
  (* synthesized designs against their hand-built baselines, k cycles *)
  List.iter
    (fun (name, src, hand, k) ->
      let d = Sc_core.Designs.parse src in
      let synth = (Sc_synth.Synth.gates d).Sc_synth.Synth.circuit in
      let inputs =
        List.fold_left
          (fun acc (p : Sc_netlist.Circuit.port) -> acc + Array.length p.bits)
          0
          (Sc_netlist.Circuit.inputs synth)
      in
      let man = Bdd.create () in
      let v, ms = time (fun () -> Checker.check ~man ~k synth hand) in
      row
        (Printf.sprintf "%s: synth vs hand (k=%d)" name k)
        ~inputs:(inputs * k) man v ms)
    [ ("counter", Sc_core.Designs.counter_src, Sc_core.Designs.hand_counter (), 8)
    ; ("traffic", Sc_core.Designs.traffic_src, Sc_core.Designs.hand_traffic (), 8)
    ; ("alu4", Sc_core.Designs.alu_src, Sc_core.Designs.hand_alu (), 6)
    ];
  (* the PDP-8 datapath: purely combinational, 48 inputs — far beyond
     exhaustive simulation (2^48 vectors), settled in milliseconds *)
  let dp = Sc_core.Designs.parse Sc_core.Designs.pdp8_dp_src in
  let synth_dp = (Sc_synth.Synth.gates dp).Sc_synth.Synth.circuit in
  let hand_dp = Sc_core.Designs.hand_pdp8_dp () in
  let man = Sc_equiv.Bdd.create () in
  let v, ms = time (fun () -> Checker.check ~man synth_dp hand_dp) in
  row "pdp8 datapath: synth vs hand" ~inputs:48 man v ms;
  (* optimizer certification: raw translation vs optimized, every design *)
  List.iter
    (fun (name, src, _, _, _) ->
      if name <> "pdp8" then begin
        let d = Sc_core.Designs.parse src in
        let raw =
          (Sc_synth.Synth.gates ~optimize:false d).Sc_synth.Synth.circuit
        in
        let opt = Sc_netlist.Optimize.simplify raw in
        let inputs =
          List.fold_left
            (fun acc (p : Sc_netlist.Circuit.port) -> acc + Array.length p.bits)
            0
            (Sc_netlist.Circuit.inputs raw)
        in
        let seq = (Sc_netlist.Circuit.stats raw).Sc_netlist.Circuit.flipflops > 0 in
        let man = Bdd.create () in
        let v, ms = time (fun () -> Checker.check ~man ~k:6 raw opt) in
        row
          (name ^ ": raw vs optimized")
          ~inputs:(if seq then inputs * 6 else inputs)
          man v ms
      end)
    (Sc_core.Designs.all ());
  (* artwork: exhaustive switch-level tabulation of the extracted masks
     compared formally against the symbolic gate function *)
  let gate_ref name kind ins =
    let b = Sc_netlist.Builder.create name in
    let nets =
      List.map (fun n -> (Sc_netlist.Builder.input b n 1).(0)) ins
    in
    Sc_netlist.Builder.output b "y"
      [| Sc_netlist.Builder.gate b kind (Array.of_list nets) |];
    Sc_netlist.Builder.finish b
  in
  List.iter
    (fun (name, cell, kind, ins) ->
      let v, ms =
        time (fun () ->
            Checker.check_artwork cell ~inputs:ins ~outputs:[ "y" ]
              (gate_ref name kind ins))
      in
      Printf.printf "%-34s %7d %9s %10s %8.1f\n"
        ("artwork " ^ name ^ " vs gate")
        (List.length ins) "-"
        (match v with
        | Checker.Equivalent -> "EQUIV"
        | Checker.Not_equivalent _ -> "DIFFER")
        ms)
    [ ("inv", Sc_stdcell.Nmos.inv (), Sc_netlist.Gate.Inv, [ "a" ])
    ; ("nand2", Sc_stdcell.Nmos.nand 2, Sc_netlist.Gate.Nand2, [ "a"; "b" ])
    ; ("nand3", Sc_stdcell.Nmos.nand 3, Sc_netlist.Gate.Nand3, [ "a"; "b"; "c" ])
    ; ("nor2", Sc_stdcell.Nmos.nor2 (), Sc_netlist.Gate.Nor2, [ "a"; "b" ])
    ];
  (* fault injection: one gate flipped in the hand datapath; the checker
     must produce a concrete counterexample and the event-driven
     simulator must reproduce it *)
  let ngates = List.length (Sc_netlist.Circuit.flatten hand_dp).Sc_netlist.Circuit.gates in
  let mutated = Checker.mutate hand_dp (ngates / 2) in
  (match Checker.check synth_dp mutated with
  | Checker.Equivalent ->
    Printf.printf "\nfault injection: mutation was masked (unexpected)\n"
  | Checker.Not_equivalent cex ->
    Printf.printf
      "\nfault injection: gate %d of %d flipped in the hand datapath\n"
      (ngates / 2) ngates;
    Printf.printf "  counterexample: output %s[%d] under" cex.Checker.output
      cex.Checker.bit;
    List.iter
      (fun (p, v) -> Printf.printf " %s=%d" p v)
      (List.hd cex.Checker.frames);
    Printf.printf "\n  replay through the event-driven simulator: %s\n"
      (match Checker.replay synth_dp mutated cex with
      | Checker.Reproduced -> "CONFIRMED"
      | Checker.Not_reproduced -> "NOT REPRODUCED"
      | Checker.Indeterminate -> "INDETERMINATE (X state)"));
  Printf.printf
    "\npaper: 'verification by simulation' is the closing concern — the \
     BDD engine upgrades it to proof wherever the netlist is in reach\n"

(* ------------------------------------------------------------------ *)
(* E10: where the time goes — the obs layer profiles every stage       *)
(* ------------------------------------------------------------------ *)

let profile () =
  section "E10: where the time goes (stage-level spans, lib/obs)"
    "Meyer's CVC lesson: fast compilers are built by measuring each \
     flow-graph stage — every scc run can now answer where the time and \
     area went";
  (* Bechamel's CLOCK_MONOTONIC stub replaces the default wall clock *)
  Sc_obs.Obs.set_clock (fun () ->
      Int64.to_float (Monotonic_clock.now ()) /. 1e9);
  let designs =
    [ ("counter", Sc_core.Designs.counter_src)
    ; ("traffic", Sc_core.Designs.traffic_src)
    ; ("alu4", Sc_core.Designs.alu_src)
    ; ("pdp8", Sc_core.Designs.pdp8_src)
    ]
  in
  let runs =
    List.map
      (fun (name, src) ->
        Sc_obs.Obs.reset ();
        Sc_obs.Obs.enable ();
        (match Sc_core.Compiler.compile_behavior src with
        | Ok _ -> ()
        | Error d ->
          failwith ("profile: " ^ name ^ ": " ^ Sc_pipeline.Diag.to_string d));
        Sc_obs.Obs.disable ();
        ( name
        , Sc_obs.Obs.stage_table ()
        , Sc_obs.Obs.totals ()
        , Sc_metrics.Metrics.capture ~design:name () ))
      designs
  in
  Printf.printf "stage cost, ms (one full behavioral compilation each):\n\n";
  Printf.printf "%-12s" "stage";
  List.iter (fun (name, _, _, _) -> Printf.printf " %9s" name) runs;
  Printf.printf "\n";
  let row label path =
    Printf.printf "%-12s" label;
    List.iter
      (fun (_, table, _, _) ->
        match
          List.find_opt (fun (r : Sc_obs.Obs.row) -> r.rpath = path) table
        with
        | Some r -> Printf.printf " %9.2f" r.total_ms
        | None -> Printf.printf " %9s" "-")
      runs;
    Printf.printf "\n"
  in
  List.iter
    (fun stage -> row stage stage)
    [ "parse"; "compile"; "optimize"; "place"; "route"; "drc"; "emit" ];
  Printf.printf "%-12s" "total";
  List.iter
    (fun (_, table, _, _) ->
      let total =
        List.fold_left
          (fun a (r : Sc_obs.Obs.row) ->
            if r.rdepth = 0 then a +. r.total_ms else a)
          0.0 table
      in
      Printf.printf " %9.2f" total)
    runs;
  Printf.printf "\n\ncounters (gauges from the same runs):\n\n";
  Printf.printf "%-16s" "counter";
  List.iter (fun (name, _, _, _) -> Printf.printf " %9s" name) runs;
  Printf.printf "\n";
  List.iter
    (fun key ->
      Printf.printf "%-16s" key;
      List.iter
        (fun (_, _, totals, _) ->
          match List.assoc_opt key totals with
          | Some v -> Printf.printf " %9d" v
          | None -> Printf.printf " %9s" "-")
        runs;
      Printf.printf "\n")
    [ "gates"; "flipflops"; "transistors"; "route.channels"; "route.tracks"
    ; "route.height"; "drc.violations"; "cif.commands"; "cif.bytes"
    ];
  Printf.printf
    "\nthe drc and emit stages dominate (geometry volume), synthesis is \
     cheap; `scc isp DESIGN --stats --trace out.json` reproduces any row \
     with a loadable Chrome trace\n";
  (* the same data, machine-readable: one metrics snapshot per design,
     the perf trajectory a future commit diffs against *)
  let json =
    Sc_obs.Json.Obj
      [ ("schema", Sc_obs.Json.Str "scc-bench")
      ; ("experiment", Sc_obs.Json.Str "e10")
      ; ( "snapshots"
        , Sc_obs.Json.Arr
            (List.map (fun (_, _, _, s) -> Sc_metrics.Metrics.to_json s) runs)
        )
      ]
  in
  let oc = open_out "BENCH_e10.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sc_obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "machine-readable snapshots written to BENCH_e10.json\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let counter_src_of_width w =
  Printf.sprintf
    {|
module counter%d;
inputs reset[1];
outputs q[%d];
registers count[%d];
behavior
  if reset == 1 then count := 0;
  else count := count + 1;
  end
  q := count;
end
|}
    w w w

let ablate () =
  section "Ablations" "design choices DESIGN.md calls out, each toggled";
  (* A1: two-level minimization before PLA generation *)
  Printf.printf "A1  minimize before PLA generation (traffic controller):\n";
  let d = Sc_core.Designs.parse Sc_core.Designs.traffic_src in
  let raw = Sc_synth.Synth.pla_fsm ~minimize:false d in
  let mn = Sc_synth.Synth.pla_fsm ~minimize:true d in
  let area r = Sc_layout.Cell.area (snd r).Sc_pla.Generator.layout in
  Printf.printf
    "    off: %d rows, %d sq lambda;  on: %d rows, %d sq lambda (%.2fx)\n"
    (snd raw).Sc_pla.Generator.rows (area raw) (snd mn).Sc_pla.Generator.rows
    (area mn)
    (ratio (area raw) (area mn));
  (* A2: doglegs in the channel router -- their real job is breaking
     vertical-constraint cycles: 1 over 2 at column 0, 2 over 3 at column
     28, 3 over 1 at column 56; net 1's mid-channel pin lets the dogleg
     split it and open the cycle *)
  Printf.printf "\nA2  channel router doglegs (cyclic constraint case):\n";
  let spec =
    let open Sc_route.Channel in
    { top = [ { x = 0; net = 1 }; { x = 28; net = 2 }; { x = 56; net = 3 } ]
    ; bottom =
        [ { x = 0; net = 2 }; { x = 14; net = 1 }; { x = 28; net = 3 }
        ; { x = 56; net = 1 }
        ]
    ; width = 60
    }
  in
  (match Sc_route.Channel.route spec with
  | r -> Printf.printf "    off: routed in %d tracks (unexpected!)\n" r.Sc_route.Channel.tracks
  | exception Sc_route.Channel.Unroutable _ ->
    Printf.printf "    off: UNROUTABLE (vertical constraint cycle)\n");
  (match Sc_route.Channel.route ~dogleg:true spec with
  | r ->
    Printf.printf "    on:  routed in %d tracks (height %d), DRC %s\n"
      r.Sc_route.Channel.tracks r.Sc_route.Channel.height
      (if Sc_drc.Checker.is_clean r.Sc_route.Channel.layout then "clean"
       else "FAIL")
  | exception Sc_route.Channel.Unroutable m -> Printf.printf "    on:  unroutable: %s\n" m);
  (* A3: placement algorithm *)
  Printf.printf "\nA3  placement (pdp8 netlist HPWL):\n";
  let c =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.pdp8_src))
      .Sc_synth.Synth.circuit
  in
  let p = Sc_place.Placer.problem_of_circuit c in
  Printf.printf "    random %d; ordered %d; ordered+improve %d\n"
    (Sc_place.Placer.hpwl (Sc_place.Placer.random p))
    (Sc_place.Placer.hpwl (Sc_place.Placer.ordered p))
    (Sc_place.Placer.hpwl
       (Sc_place.Placer.improve ~iters:3000 (Sc_place.Placer.ordered p)));
  (* A4: PLA vs discrete-gate control as state grows *)
  Printf.printf "\nA4  control style vs state count (counter width sweep):\n";
  Printf.printf "    %5s %12s %12s\n" "bits" "gates area" "PLA area";
  List.iter
    (fun w ->
      let d = Sc_core.Designs.parse (counter_src_of_width w) in
      let g = Sc_synth.Synth.gates d in
      let pla_area =
        match Sc_synth.Synth.pla_fsm d with
        | r, _ -> string_of_int r.Sc_synth.Synth.cell_area
        | exception Sc_pipeline.Diag.Error _ -> "(too large)"
      in
      Printf.printf "    %5d %12d %12s\n" w g.Sc_synth.Synth.cell_area pla_area)
    [ 2; 4; 6; 8; 10 ];
  (* A5: the netlist optimizer *)
  Printf.printf "\nA5  netlist optimizer (gates backend, transistors):\n";
  List.iter
    (fun (name, src, _, _, _) ->
      let d = Sc_core.Designs.parse src in
      let off = Sc_synth.Synth.gates ~optimize:false d in
      let on = Sc_synth.Synth.gates ~optimize:true d in
      Printf.printf "    %-10s off %6d  on %6d  (%.2fx)\n" name
        off.Sc_synth.Synth.stats.Sc_netlist.Circuit.transistors
        on.Sc_synth.Synth.stats.Sc_netlist.Circuit.transistors
        (ratio off.Sc_synth.Synth.stats.Sc_netlist.Circuit.transistors
           on.Sc_synth.Synth.stats.Sc_netlist.Circuit.transistors))
    (Sc_core.Designs.all ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks" "compiler hot paths, ns per run (Bechamel OLS)";
  let open Bechamel in
  let cell_row =
    Sc_stdcell.Nmos.row "r"
      [ Sc_stdcell.Nmos.inv (); Sc_stdcell.Nmos.nand 2; Sc_stdcell.Nmos.nor2 ()
      ; Sc_stdcell.Nmos.nand 3
      ]
  in
  let cif_text = Sc_cif.Emit.to_string cell_row in
  let full_adder_cover =
    Sc_logic.Cover.of_function ~ninputs:3 ~noutputs:2 (fun bits ->
        let a = bits.(0) and b = bits.(1) and c = bits.(2) in
        [| a <> b <> c; (a && b) || (a && c) || (b && c) |])
  in
  let pdp8_engine =
    Sc_sim.Engine.create
      (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.pdp8_src))
        .Sc_synth.Synth.circuit
  in
  let chan_spec =
    let open Sc_route.Channel in
    { top = List.init 6 (fun i -> { x = i * 14; net = i })
    ; bottom = List.init 6 (fun i -> { x = (i * 14) + 7; net = i })
    ; width = 92
    }
  in
  let trans =
    Sc_geom.Transform.make ~orient:Sc_geom.Transform.R90
      (Sc_geom.Point.make 17 (-3))
  in
  let tests =
    Test.make_grouped ~name:"silicon_compiler"
      [ Test.make ~name:"transform.apply_rect"
          (Staged.stage (fun () ->
               Sc_geom.Transform.apply_rect trans (Sc_geom.Rect.make 1 2 30 40)))
      ; Test.make ~name:"cif.emit(stdcell row)"
          (Staged.stage (fun () -> Sc_cif.Emit.to_string cell_row))
      ; Test.make ~name:"cif.parse(stdcell row)"
          (Staged.stage (fun () -> Sc_cif.Parse.parse cif_text))
      ; Test.make ~name:"drc.check(stdcell row)"
          (Staged.stage (fun () -> Sc_drc.Checker.check cell_row))
      ; Test.make ~name:"qm.minimize(full adder)"
          (Staged.stage (fun () ->
               Sc_logic.Minimize.minimize ~exact:true full_adder_cover))
      ; Test.make ~name:"sim.step(pdp8)"
          (Staged.stage (fun () ->
               Sc_sim.Engine.set_input_int pdp8_engine "inst" 0xE5;
               Sc_sim.Engine.step pdp8_engine))
      ; Test.make ~name:"route.channel(6 nets)"
          (Staged.stage (fun () -> Sc_route.Channel.route chan_spec))
      ; Test.make ~name:"layout.flatten(stdcell row)"
          (Staged.stage (fun () -> Sc_layout.Flatten.run cell_row))
      ; (* the observability bargain: a span must cost one branch when
           disabled, so instrumented hot paths stay at their old numbers *)
        Test.make ~name:"obs.span(disabled)"
          (Staged.stage (fun () -> Sc_obs.Obs.span "micro" (fun () -> 42)))
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "  %-42s %14.0f ns/run\n" name est
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* E11: domain-pool scaling and the content-hash result cache          *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11: domain-pool scaling and the content-hash result cache"
    "DRC sharding, multi-seed placement and per-cone equivalence run on \
     an OCaml 5 domain pool with byte-identical output at every pool \
     width; a content-addressed cache makes identical recompiles free";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host: %d core(s) available to the runtime%s\n\n" cores
    (if cores = 1 then
       " — wall-clock speedup is bounded at 1.0x here; the table still \
        demonstrates determinism and bounded overhead"
     else "");
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let levels = [ 1; 2; 4; 8 ] in
  let with_pool j f =
    let pool = Sc_par.Pool.create ~domains:j () in
    Fun.protect
      ~finally:(fun () -> Sc_par.Pool.shutdown pool)
      (fun () -> wall (fun () -> f pool))
  in
  Printf.printf "%-8s %-6s %9s %9s %9s %9s %7s %s\n" "design" "stage"
    "j=1 ms" "j=2 ms" "j=4 ms" "j=8 ms" "x at 4" "identical";
  let all_identical = ref true in
  let json_rows = ref [] in
  let print_row name stage times same =
    if not same then all_identical := false;
    json_rows :=
      Sc_obs.Json.Obj
        [ ("design", Sc_obs.Json.Str name)
        ; ("stage", Sc_obs.Json.Str stage)
        ; ( "ms"
          , Sc_obs.Json.Obj
              (List.map2
                 (fun j t ->
                   (Printf.sprintf "j%d" j, Sc_obs.Json.Num (Float.round (t *. 1000.) /. 1000.)))
                 levels times) )
        ; ("identical", Sc_obs.Json.Bool same)
        ]
      :: !json_rows;
    match times with
    | [ t1; t2; t4; t8 ] ->
      Printf.printf "%-8s %-6s %9.1f %9.1f %9.1f %9.1f %7.2f %s\n" name stage
        t1 t2 t4 t8
        (t1 /. Float.max t4 0.001)
        (if same then "yes" else "NO")
    | _ -> assert false
  in
  List.iter
    (fun (name, src) ->
      let d = Sc_core.Designs.parse src in
      let circuit = (Sc_synth.Synth.gates d).Sc_synth.Synth.circuit in
      let problem = Sc_place.Placer.problem_of_circuit circuit in
      let layout = Sc_core.Compiler.layout_of_circuit ~name circuit in
      let flat = Sc_layout.Flatten.run layout in
      let row stage f check_same =
        let results = List.map (fun j -> with_pool j f) levels in
        print_row name stage
          (List.map snd results)
          (check_same (List.map fst results))
      in
      row "drc"
        (fun pool -> Sc_drc.Checker.check_flat ~pool flat)
        (fun vs -> List.for_all (( = ) (List.hd vs)) vs);
      row "place"
        (fun pool ->
          let pl = Sc_place.Placer.best_of ~pool ~seeds:7 problem in
          Sc_core.Compiler.to_cif (Sc_place.Placer.to_layout ~name pl))
        (fun cifs -> List.for_all (String.equal (List.hd cifs)) cifs))
    [ ("counter", Sc_core.Designs.counter_src)
    ; ("traffic", Sc_core.Designs.traffic_src)
    ; ("alu4", Sc_core.Designs.alu_src)
    ; ("pdp8", Sc_core.Designs.pdp8_src)
    ];
  (* equivalence by output cone: the 48-input pdp8 datapath, one BDD
     manager per cone *)
  let dp = Sc_core.Designs.parse Sc_core.Designs.pdp8_dp_src in
  let synth_dp = (Sc_synth.Synth.gates dp).Sc_synth.Synth.circuit in
  let hand_dp = Sc_core.Designs.hand_pdp8_dp () in
  let cone_runs =
    List.map
      (fun j ->
        with_pool j (fun pool ->
            Sc_equiv.Checker.check_cones ~pool synth_dp hand_dp))
      levels
  in
  let verdicts_ok =
    List.for_all
      (fun (v, _) -> v = Sc_equiv.Checker.Equivalent)
      cone_runs
  in
  print_row "pdp8_dp" "equiv" (List.map snd cone_runs) verdicts_ok;
  if not !all_identical then begin
    Printf.printf "\nFAIL: output varied with the pool width\n";
    exit 1
  end;
  Printf.printf "\nall outputs byte-identical at every pool width\n";
  (* the result cache: hit in memory, then from disk after a "restart" *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "scc-e11-cache" in
  (* the directory persists across bench runs: start genuinely cold *)
  rm_rf dir;
  let compile () =
    match Sc_core.Compiler.compile_behavior Sc_core.Designs.pdp8_src with
    | Ok _ -> ()
    | Error d -> failwith (Sc_pipeline.Diag.to_string d)
  in
  Sc_pipeline.Pipeline.enable_cache ~dir ();
  let (), cold = wall compile in
  let (), warm = wall compile in
  (* a "restart": drop every in-memory store, keep the disk artifacts *)
  Sc_pipeline.Pipeline.clear_caches ();
  let (), disk = wall compile in
  Sc_pipeline.Pipeline.disable_cache ();
  Sc_pipeline.Pipeline.clear_caches ();
  Printf.printf
    "stage cache (pdp8): cold %.1f ms, memory hit %.1f ms (%.0fx), disk \
     hit after restart %.1f ms\n"
    cold warm
    (cold /. Float.max warm 0.001)
    disk;
  let round3 t = Sc_obs.Json.Num (Float.round (t *. 1000.) /. 1000.) in
  let json =
    Sc_obs.Json.Obj
      [ ("schema", Sc_obs.Json.Str "scc-bench")
      ; ("experiment", Sc_obs.Json.Str "e11")
      ; ("identical", Sc_obs.Json.Bool !all_identical)
      ; ("rows", Sc_obs.Json.Arr (List.rev !json_rows))
      ; ( "result_cache_ms"
        , Sc_obs.Json.Obj
            [ ("cold", round3 cold)
            ; ("memory_hit", round3 warm)
            ; ("disk_hit", round3 disk)
            ] )
      ]
  in
  let oc = open_out "BENCH_e11.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sc_obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "machine-readable rows written to BENCH_e11.json\n"

(* ------------------------------------------------------------------ *)
(* E13: incremental recompilation through the typed pass manager       *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13: incremental recompilation (per-stage cache, lib/pipeline)"
    "the pass manager turns whole-run memoization into per-pass reuse: \
     an identical input hits every stage; editing --restarts reruns \
     only place and the passes downstream of it";
  let module P = Sc_pipeline.Pipeline in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "scc-e13-cache" in
  (* the directory persists across bench runs: start genuinely cold *)
  rm_rf dir;
  let compile restarts =
    P.reset_log ();
    match
      Sc_core.Compiler.compile_behavior ~restarts Sc_core.Designs.pdp8_src
    with
    | Ok _ -> P.log ()
    | Error d -> failwith (Sc_pipeline.Diag.to_string d)
  in
  P.enable_cache ~dir ();
  let log_cold, cold = wall (fun () -> compile 2) in
  let log_warm, warm = wall (fun () -> compile 2) in
  let log_edit, edit = wall (fun () -> compile 5) in
  P.disable_cache ();
  P.clear_caches ();
  Printf.printf "%-10s %-14s %-14s %-14s\n" "pass" "cold" "warm (same)"
    "warm (edited)";
  List.iteri
    (fun i (name, _) ->
      let at lg = P.status_to_string (snd (List.nth lg i)) in
      Printf.printf "%-10s %-14s %-14s %-14s\n" name (at log_cold)
        (at log_warm) (at log_edit))
    log_cold;
  Printf.printf
    "\ntimings: cold %.1f ms; identical input %.1f ms (%.0fx); after a \
     --restarts edit %.1f ms (%.1fx)\n"
    cold warm
    (cold /. Float.max warm 0.001)
    edit
    (cold /. Float.max edit 0.001);
  let ran lg =
    List.filter_map
      (fun (n, st) -> if st = P.Ran || st = P.Failed then Some n else None)
      lg
  in
  let fail msg =
    Printf.printf "\nFAIL: %s\n" msg;
    exit 1
  in
  if ran log_warm <> [] then
    fail
      ("identical input re-ran: " ^ String.concat ", " (ran log_warm));
  if ran log_edit <> [ "place"; "route"; "drc"; "emit"; "measure" ] then
    fail
      ("--restarts edit re-ran: " ^ String.concat ", " (ran log_edit)
     ^ " (expected place route drc emit measure)");
  Printf.printf
    "\nidentical input: all-stage hit; --restarts edit: \
     parse/compile/optimize reused, place..measure recomputed\n";
  let round3 t = Sc_obs.Json.Num (Float.round (t *. 1000.) /. 1000.) in
  let statuses lg =
    Sc_obs.Json.Obj
      (List.map
         (fun (n, st) -> (n, Sc_obs.Json.Str (P.status_to_string st)))
         lg)
  in
  let json =
    Sc_obs.Json.Obj
      [ ("schema", Sc_obs.Json.Str "scc-bench")
      ; ("experiment", Sc_obs.Json.Str "e13")
      ; ( "ms"
        , Sc_obs.Json.Obj
            [ ("cold", round3 cold)
            ; ("warm_identical", round3 warm)
            ; ("warm_after_restarts_edit", round3 edit)
            ] )
      ; ("cold", statuses log_cold)
      ; ("warm_identical", statuses log_warm)
      ; ("warm_after_restarts_edit", statuses log_edit)
      ]
  in
  let oc = open_out "BENCH_e13.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sc_obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "machine-readable timings written to BENCH_e13.json\n"

(* ------------------------------------------------------------------ *)
(* E14: the compile daemon under concurrent load                       *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14: the compile daemon under concurrent load (scc serve)"
    "a long-running daemon multiplexing concurrent compilations over one \
     shared stage cache beats sequential single-shot compilation on \
     throughput while every response's QoR stays byte-identical to the \
     committed baselines";
  let module P = Sc_serve.Protocol in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let fail msg =
    Printf.printf "\nFAIL: %s\n" msg;
    exit 1
  in
  let designs = [ "counter"; "traffic"; "alu4"; "pdp8" ] in
  let src_of name =
    match Sc_core.Designs.builtin name with
    | Some s -> s
    | None -> fail ("no builtin design " ^ name)
  in
  let baseline_dir =
    if Sys.file_exists "bench/baselines" then "bench/baselines"
    else "baselines"
  in
  let baseline_qor =
    List.map
      (fun name ->
        let path = Filename.concat baseline_dir (name ^ ".json") in
        match Sc_metrics.Metrics.read path with
        | Ok s -> (name, Sc_metrics.Metrics.qor_string s)
        | Error e -> fail (path ^ ": " ^ e))
      designs
  in
  (* --- sequential single-shot baseline, measured BEFORE the daemon
     takes over the process-global cache configuration: each run pays
     the full cold pipeline, exactly like one `scc isp D` process --- *)
  Sc_pipeline.Pipeline.disable_cache ();
  Sc_pipeline.Pipeline.clear_caches ();
  let seq_rounds = 2 in
  let (), seq_time =
    wall (fun () ->
        for _ = 1 to seq_rounds do
          List.iter
            (fun name ->
              match Sc_core.Compiler.compile_behavior (src_of name) with
              | Ok _ -> ()
              | Error d ->
                fail (name ^ ": " ^ Sc_pipeline.Diag.to_string d))
            designs
        done)
  in
  let seq_n = seq_rounds * List.length designs in
  let seq_rps = float_of_int seq_n /. seq_time in
  Printf.printf
    "sequential single-shot: %d cold compiles in %.1f s (%.1f req/s)\n"
    seq_n seq_time seq_rps;
  Sc_pipeline.Pipeline.clear_caches ();
  (* --- start the daemon in-process on a temp socket --- *)
  let tmp = Filename.get_temp_dir_name () in
  let socket = Filename.concat tmp "scc-e14.sock" in
  let cache_dir = Filename.concat tmp "scc-e14-cache" in
  rm_rf cache_dir;
  let server_exit = ref (-1) in
  let server =
    Thread.create
      (fun () ->
        server_exit :=
          Sc_serve.Server.run ~jobs:1 ~stage_cache:cache_dir
            ~handle_signals:false ~socket ())
      ()
  in
  let rec await n =
    if n = 0 then fail "daemon did not come up"
    else if not (Sys.file_exists socket) then begin
      Thread.delay 0.05;
      await (n - 1)
    end
  in
  await 100;
  let rpc fd req =
    match Sc_serve.Client.rpc fd req with
    | Ok r -> r
    | Error e -> fail ("rpc: " ^ e)
  in
  let one_shot req =
    match Sc_serve.Client.one_shot socket req with
    | Ok r -> r
    | Error e -> fail ("rpc: " ^ e)
  in
  let stat key =
    match one_shot P.Stats with
    | P.Stats_reply s -> (
      match List.assoc_opt key s.P.counters with
      | Some v -> v
      | None -> fail ("no stat " ^ key))
    | _ -> fail "unexpected stats response"
  in
  let spec name restarts =
    { P.design = name; source = src_of name; style = "gates"; restarts
    ; certify = false
    }
  in
  (* --- in-flight dedup: concurrent identical cold requests share one
     execution (pdp8 is ~hundreds of ms cold, a comfortable window) --- *)
  let before = stat "serve.executions" in
  let clients = 4 in
  let replies = Array.make clients None in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () -> replies.(i) <- Some (one_shot (P.Compile (spec "pdp8" 0))))
          ())
  in
  List.iter Thread.join threads;
  Array.iter
    (function
      | Some (P.Compiled _) -> ()
      | _ -> fail "dedup phase: a client did not get a Compiled reply")
    replies;
  let executions = stat "serve.executions" - before in
  let dedup = stat "serve.dedup_hits" in
  Printf.printf
    "dedup: %d concurrent identical cold requests -> %d execution(s), %d \
     dedup hit(s)\n"
    clients executions dedup;
  if dedup < 1 then
    fail "concurrent identical requests did not share an execution";
  (* --- the load: thousands of mixed warm/cold requests across the four
     designs over persistent connections; restarts variants add cold
     executions mid-stream --- *)
  let total = 2000 in
  let workers = 8 in
  let darr = Array.of_list designs in
  let spec_of i =
    (* deterministic mix: every 83rd request is a --restarts variant
       (cold the first time a (design, restarts) pair appears) *)
    let name = darr.(i mod Array.length darr) in
    let restarts = if i mod 83 = 7 then 1 + (i / 83 mod 3) else 0 in
    spec name restarts
  in
  let errors = Mutex.create () and errs = ref [] in
  let err m =
    Mutex.protect errors (fun () -> errs := m :: !errs)
  in
  (* restarts variants have no committed baseline (restarts changes
     placement QoR); they are checked for self-consistency instead *)
  let variant_lock = Mutex.create () in
  let variants : (string * int, string) Hashtbl.t = Hashtbl.create 16 in
  let check_qor (s : P.compile_spec) qor =
    if s.P.restarts = 0 then begin
      match List.assoc_opt s.P.design baseline_qor with
      | Some want when String.equal want qor -> ()
      | Some _ -> err (s.P.design ^ ": QoR differs from committed baseline")
      | None -> err ("no baseline for " ^ s.P.design)
    end
    else
      Mutex.protect variant_lock (fun () ->
          let key = (s.P.design, s.P.restarts) in
          match Hashtbl.find_opt variants key with
          | None -> Hashtbl.replace variants key qor
          | Some want ->
            if not (String.equal want qor) then
              err
                (Printf.sprintf "%s --restarts %d: QoR varied across requests"
                   s.P.design s.P.restarts))
  in
  let worker w () =
    match Sc_serve.Client.connect socket with
    | Error e -> err e
    | Ok fd ->
      Fun.protect
        ~finally:(fun () -> Sc_serve.Client.close fd)
        (fun () ->
          let i = ref w in
          while !i < total do
            let s = spec_of !i in
            (match rpc fd (P.Compile s) with
            | P.Compiled r -> (
              match Sc_metrics.Metrics.of_json r.P.snapshot with
              | Ok snap ->
                check_qor s (Sc_metrics.Metrics.qor_string snap)
              | Error e -> err ("bad snapshot: " ^ e))
            | P.Error_reply { stage; message } ->
              err (stage ^ ": " ^ message)
            | _ -> err "unexpected response");
            i := !i + workers
          done)
  in
  let (), load_time =
    wall (fun () ->
        let ts = List.init workers (fun w -> Thread.create (worker w) ()) in
        List.iter Thread.join ts)
  in
  (match !errs with
  | [] -> ()
  | e :: _ ->
    fail (Printf.sprintf "%d bad response(s), first: %s" (List.length !errs) e));
  let daemon_rps = float_of_int total /. load_time in
  let executions_total = stat "serve.executions" in
  let dedup_total = stat "serve.dedup_hits" in
  Printf.printf
    "daemon: %d mixed warm/cold requests over %d connections in %.1f s \
     (%.0f req/s, %d pipeline executions, %d dedup hits)\n"
    total workers load_time daemon_rps executions_total dedup_total;
  Printf.printf "speedup over sequential single-shot: %.0fx\n"
    (daemon_rps /. seq_rps);
  if daemon_rps <= seq_rps then
    fail "daemon throughput did not beat sequential single-shot compilation";
  Printf.printf
    "every response QoR byte-identical (%d against committed baselines, \
     restarts variants self-consistent)\n"
    (total - ((total / 83) + 1));
  (* --- clean shutdown over the protocol --- *)
  (match one_shot P.Shutdown with
  | P.Bye -> ()
  | _ -> fail "shutdown: expected Bye");
  Thread.join server;
  if !server_exit <> 0 then
    fail (Printf.sprintf "daemon exited %d" !server_exit);
  if Sys.file_exists socket then fail "daemon left its socket behind";
  Printf.printf "clean shutdown: daemon drained, exit 0, socket unlinked\n";
  Sc_pipeline.Pipeline.disable_cache ();
  Sc_pipeline.Pipeline.clear_caches ();
  let round1 t = Sc_obs.Json.Num (Float.round (t *. 10.) /. 10.) in
  let json =
    Sc_obs.Json.Obj
      [ ("schema", Sc_obs.Json.Str "scc-bench")
      ; ("experiment", Sc_obs.Json.Str "e14")
      ; ("sequential_rps", round1 seq_rps)
      ; ("daemon_rps", round1 daemon_rps)
      ; ("speedup", round1 (daemon_rps /. seq_rps))
      ; ("requests", Sc_obs.Json.Num (float_of_int total))
      ; ("executions", Sc_obs.Json.Num (float_of_int executions_total))
      ; ("dedup_hits", Sc_obs.Json.Num (float_of_int dedup_total))
      ; ("qor_identical", Sc_obs.Json.Bool true)
      ]
  in
  let oc = open_out "BENCH_e14.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sc_obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "machine-readable results written to BENCH_e14.json\n"

(* ------------------------------------------------------------------ *)
(* E15: the certified pipeline — what translation validation costs     *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15: certified compilation (per-pass translation validation)"
    "with --certify every netlist-to-netlist pass proves its output \
     equivalent to its input before the pipeline continues: an injected \
     miscompile is refused naming the pass, certificates are cached \
     with the stage artifacts, and the proof overhead is a bounded \
     fraction of the cold compile";
  let module P = Sc_pipeline.Pipeline in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let fail msg =
    Printf.printf "\nFAIL: %s\n" msg;
    exit 1
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "scc-e15-cache" in
  rm_rf dir;
  let compile ?inject_fault () =
    P.reset_log ();
    match
      Sc_core.Compiler.compile_behavior ?inject_fault Sc_core.Designs.pdp8_src
    with
    | Ok _ -> (P.log (), None)
    | Error d -> (P.log (), Some d)
  in
  (* plain cold compile first, as the overhead baseline (its own cache
     so the certified run below is also genuinely cold) *)
  let (_, err_plain), plain_ms = wall (fun () -> compile ()) in
  (match err_plain with
  | None -> ()
  | Some d -> fail ("plain compile failed: " ^ Sc_pipeline.Diag.to_string d));
  P.enable_cache ~dir ();
  P.enable_certify ();
  Fun.protect
    ~finally:(fun () ->
      P.disable_certify ();
      P.disable_cache ();
      P.clear_caches ())
  @@ fun () ->
  let (log_cold, err_cold), cold_ms = wall (fun () -> compile ()) in
  (match err_cold with
  | None -> ()
  | Some d ->
    fail ("certified compile refused: " ^ Sc_pipeline.Diag.to_string d));
  let (log_warm, err_warm), warm_ms = wall (fun () -> compile ()) in
  (match err_warm with
  | None -> ()
  | Some d ->
    fail ("warm certified compile refused: " ^ Sc_pipeline.Diag.to_string d));
  let ran lg =
    List.filter_map
      (fun (n, st) -> if st = P.Ran || st = P.Failed then Some n else None)
      lg
  in
  if ran log_warm <> [] then
    fail
      ("warm certified rebuild re-ran: " ^ String.concat ", " (ran log_warm));
  Printf.printf "%-28s %10s\n" "compile (pdp8, gates)" "wall";
  Printf.printf "%-28s %8.1f ms\n" "plain cold" plain_ms;
  Printf.printf "%-28s %8.1f ms  (%.2fx plain)\n" "certified cold" cold_ms
    (cold_ms /. Float.max plain_ms 0.001);
  Printf.printf "%-28s %8.1f ms  (all %d passes hit, certificates included)\n"
    "certified warm" warm_ms (List.length log_warm);
  (* the checker is live: an injected miscompile must be refused naming
     the pass, and must sail through when certification is off *)
  let (_, err_inject), _ = wall (fun () -> compile ~inject_fault:1 ()) in
  (match err_inject with
  | Some d when d.Sc_pipeline.Diag.stage = "optimize" ->
    Printf.printf "\ninjected fault (gate 1 flipped): refused — %s\n"
      (Sc_pipeline.Diag.to_string d)
  | Some d ->
    fail
      ("injected fault refused by the wrong pass: "
      ^ Sc_pipeline.Diag.to_string d)
  | None -> fail "injected miscompile was certified");
  P.disable_certify ();
  let (_, err_uncert), _ = wall (fun () -> compile ~inject_fault:1 ()) in
  P.enable_certify ();
  (match err_uncert with
  | None ->
    Printf.printf
      "same fault without --certify: compiles silently — the gap \
       certification closes\n"
  | Some d ->
    fail ("uncertified injected compile failed: " ^ Sc_pipeline.Diag.to_string d));
  let round3 t = Sc_obs.Json.Num (Float.round (t *. 1000.) /. 1000.) in
  let json =
    Sc_obs.Json.Obj
      [ ("schema", Sc_obs.Json.Str "scc-bench")
      ; ("experiment", Sc_obs.Json.Str "e15")
      ; ( "ms"
        , Sc_obs.Json.Obj
            [ ("plain_cold", round3 plain_ms)
            ; ("certified_cold", round3 cold_ms)
            ; ("certified_warm", round3 warm_ms)
            ] )
      ; ( "certify_overhead_x"
        , round3 (cold_ms /. Float.max plain_ms 0.001) )
      ; ("injected_fault_refused", Sc_obs.Json.Bool true)
      ; ( "cold"
        , Sc_obs.Json.Obj
            (List.map
               (fun (n, st) -> (n, Sc_obs.Json.Str (P.status_to_string st)))
               log_cold) )
      ; ( "warm"
        , Sc_obs.Json.Obj
            (List.map
               (fun (n, st) -> (n, Sc_obs.Json.Str (P.status_to_string st)))
               log_warm) )
      ]
  in
  let oc = open_out "BENCH_e15.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sc_obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "machine-readable results written to BENCH_e15.json\n"

(* ------------------------------------------------------------------ *)
(* E16: per-request observability under concurrency                    *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16: per-request observability under concurrency"
    "every daemon execution carries its own recorder, so instrumented \
     compiles overlap instead of serializing behind a global \
     observability lock — and each response's measured QoR stays \
     byte-identical to the committed baselines";
  let module P = Sc_serve.Protocol in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let fail msg =
    Printf.printf "\nFAIL: %s\n" msg;
    exit 1
  in
  let designs = [ "counter"; "traffic"; "alu4"; "pdp8" ] in
  let src_of name =
    match Sc_core.Designs.builtin name with
    | Some s -> s
    | None -> fail ("no builtin design " ^ name)
  in
  let baseline_dir =
    if Sys.file_exists "bench/baselines" then "bench/baselines"
    else "baselines"
  in
  let baseline_qor =
    List.map
      (fun name ->
        let path = Filename.concat baseline_dir (name ^ ".json") in
        match Sc_metrics.Metrics.read path with
        | Ok s -> (name, Sc_metrics.Metrics.qor_string s)
        | Error e -> fail (path ^ ": " ^ e))
      designs
  in
  let spec ?(restarts = 0) name =
    { P.design = name; source = src_of name; style = "gates"; restarts
    ; certify = false
    }
  in
  (* the overlap-timing workload: four pdp8 placements with different
     restart budgets — four distinct dedup keys, each ~1 s of genuine
     pipeline work, so concurrency shortens the critical path instead
     of hiding behind one dominant design *)
  let heavy = [ 1; 2; 3; 4 ] in
  let heavy_spec r = spec ~restarts:r "pdp8" in
  let tmp = Filename.get_temp_dir_name () in
  (* both phases run the same daemon path against a fresh cold stage
     cache, so the only variable is whether the four instrumented
     compiles are issued sequentially or concurrently *)
  let with_daemon ?trace_dir tag f =
    let socket = Filename.concat tmp ("scc-e16-" ^ tag ^ ".sock") in
    let cache_dir = Filename.concat tmp ("scc-e16-" ^ tag ^ "-cache") in
    rm_rf cache_dir;
    (try Sys.remove socket with Sys_error _ -> ());
    let server_exit = ref (-1) in
    let server =
      Thread.create
        (fun () ->
          server_exit :=
            Sc_serve.Server.run ~jobs:1 ~stage_cache:cache_dir
              ~handle_signals:false ?trace_dir ~socket ())
        ()
    in
    let rec await n =
      if n = 0 then fail "daemon did not come up"
      else if not (Sys.file_exists socket) then begin
        Thread.delay 0.05;
        await (n - 1)
      end
    in
    await 100;
    let r = f socket in
    (match Sc_serve.Client.one_shot socket P.Shutdown with
    | Ok P.Bye -> ()
    | _ -> fail "shutdown: expected Bye");
    Thread.join server;
    if !server_exit <> 0 then
      fail (Printf.sprintf "daemon exited %d" !server_exit);
    rm_rf cache_dir;
    Sc_pipeline.Pipeline.disable_cache ();
    Sc_pipeline.Pipeline.clear_caches ();
    r
  in
  let one_shot socket req =
    match Sc_serve.Client.one_shot socket req with
    | Ok r -> r
    | Error e -> fail ("rpc: " ^ e)
  in
  let qor_of name = function
    | P.Compiled c -> (
      match Sc_metrics.Metrics.of_json c.P.snapshot with
      | Ok snap -> Sc_metrics.Metrics.qor_string snap
      | Error e -> fail (name ^ ": bad snapshot: " ^ e))
    | P.Error_reply { stage; message } ->
      fail (name ^ ": " ^ stage ^ ": " ^ message)
    | _ -> fail (name ^ ": unexpected response")
  in
  let check_qor qors =
    List.iter
      (fun (name, qor) ->
        match List.assoc_opt name baseline_qor with
        | Some want when String.equal want qor -> ()
        | Some _ -> fail (name ^ ": QoR differs from committed baseline")
        | None -> fail ("no baseline for " ^ name))
      qors
  in
  let must_compile tag = function
    | P.Compiled _ -> ()
    | P.Error_reply { stage; message } ->
      fail (tag ^ ": " ^ stage ^ ": " ^ message)
    | _ -> fail (tag ^ ": unexpected response")
  in
  (* --- phase A: everything sequential — the four baseline designs
     (QoR-checked), then the four heavy variants (the sum of solos) --- *)
  let t_designs_seq, t_seq =
    with_daemon "seq" (fun socket ->
        let (), t_designs =
          wall (fun () ->
              check_qor
                (List.map
                   (fun name ->
                     ( name
                     , qor_of name (one_shot socket (P.Compile (spec name))) ))
                   designs))
        in
        let (), t_heavy =
          wall (fun () ->
              List.iter
                (fun r ->
                  must_compile
                    (Printf.sprintf "pdp8 --restarts %d" r)
                    (one_shot socket (P.Compile (heavy_spec r))))
                heavy)
        in
        (t_designs, t_heavy))
  in
  Printf.printf
    "sequential: %d cold instrumented compiles in %.2f s, then %d heavy \
     placement variants in %.2f s\n"
    (List.length designs) t_designs_seq (List.length heavy) t_seq;
  (* --- phase B: the same work from concurrent clients, each execution
     on its own domain with its own recorder and trace --- *)
  let trace_dir = Filename.concat tmp "scc-e16-traces" in
  rm_rf trace_dir;
  let concurrently jobs =
    let jobs = Array.of_list jobs in
    let replies = Array.make (Array.length jobs) None in
    let (), t =
      wall (fun () ->
          let threads =
            Array.to_list
              (Array.mapi
                 (fun i job ->
                   Thread.create (fun () -> replies.(i) <- Some (job ())) ())
                 jobs)
          in
          List.iter Thread.join threads)
    in
    ( Array.to_list
        (Array.map
           (function Some r -> r | None -> fail "a client got no reply")
           replies)
    , t )
  in
  let (stats, t_designs_par, t_par) =
    with_daemon ~trace_dir "par" (fun socket ->
        let replies, t_designs =
          concurrently
            (List.map
               (fun name () -> one_shot socket (P.Compile (spec name)))
               designs)
        in
        check_qor
          (List.map2 (fun name r -> (name, qor_of name r)) designs replies);
        let heavies, t_heavy =
          concurrently
            (List.map
               (fun r () -> one_shot socket (P.Compile (heavy_spec r)))
               heavy)
        in
        List.iter2
          (fun r reply ->
            must_compile (Printf.sprintf "pdp8 --restarts %d" r) reply)
          heavy heavies;
        let stats =
          match one_shot socket P.Stats with
          | P.Stats_reply s -> s
          | _ -> fail "unexpected stats response"
        in
        (stats, t_designs, t_heavy))
  in
  let stat key =
    match List.assoc_opt key stats.P.counters with
    | Some v -> v
    | None -> fail ("no stat " ^ key)
  in
  let peak = stat "serve.peak_executions" in
  Printf.printf
    "concurrent: %d cold instrumented compiles in %.2f s, %d heavy \
     variants in %.2f s (peak %d executions in flight)\n"
    (List.length designs) t_designs_par (List.length heavy) t_par peak;
  if peak < 2 then
    fail "instrumented compiles serialized: peak concurrent executions < 2";
  (* the per-verb latency histogram saw exactly the compile requests *)
  let sent = List.length designs + List.length heavy in
  let compile_count = stat "latency.compile.count" in
  if compile_count <> sent then
    fail
      (Printf.sprintf "latency.compile.count = %d, expected %d" compile_count
         sent);
  let p50 = stat "latency.compile.p50_us" in
  let p95 = stat "latency.compile.p95_us" in
  let p99 = stat "latency.compile.p99_us" in
  if p50 <= 0 || p95 < p50 || p99 < p95 then
    fail
      (Printf.sprintf "implausible compile percentiles p50=%d p95=%d p99=%d"
         p50 p95 p99);
  Printf.printf "compile latency: p50 %d us, p95 %d us, p99 %d us\n" p50 p95
    p99;
  (* every execution wrote its own Chrome trace *)
  let traces =
    if Sys.file_exists trace_dir then
      Sys.readdir trace_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".trace.json")
    else []
  in
  if List.length traces <> sent then
    fail
      (Printf.sprintf "expected %d traces, found %d" sent
         (List.length traces));
  Printf.printf "per-request traces: %d written to %s\n" (List.length traces)
    trace_dir;
  rm_rf trace_dir;
  Printf.printf
    "every response QoR byte-identical to the committed baselines in both \
     phases\n";
  let cores = Domain.recommended_domain_count () in
  let speedup = t_seq /. Float.max t_par 0.001 in
  Printf.printf
    "overlap: heavy batch %.2fx over the sum of solos on %d cores\n" speedup
    cores;
  if cores >= 4 && t_par >= 0.7 *. t_seq then
    fail
      (Printf.sprintf
         "concurrent instrumented compiles did not overlap: %.2f s \
          concurrent vs %.2f s sum-of-solos on %d cores"
         t_par t_seq cores);
  let round2 t = Sc_obs.Json.Num (Float.round (t *. 100.) /. 100.) in
  let json =
    Sc_obs.Json.Obj
      [ ("schema", Sc_obs.Json.Str "scc-bench")
      ; ("experiment", Sc_obs.Json.Str "e16")
      ; ("designs_sequential_s", round2 t_designs_seq)
      ; ("designs_concurrent_s", round2 t_designs_par)
      ; ("heavy_sequential_s", round2 t_seq)
      ; ("heavy_concurrent_s", round2 t_par)
      ; ("speedup", round2 speedup)
      ; ("cores", Sc_obs.Json.Num (float_of_int cores))
      ; ("peak_executions", Sc_obs.Json.Num (float_of_int peak))
      ; ( "compile_latency_us"
        , Sc_obs.Json.Obj
            [ ("p50", Sc_obs.Json.Num (float_of_int p50))
            ; ("p95", Sc_obs.Json.Num (float_of_int p95))
            ; ("p99", Sc_obs.Json.Num (float_of_int p99))
            ] )
      ; ("traces", Sc_obs.Json.Num (float_of_int (List.length traces)))
      ; ("qor_identical", Sc_obs.Json.Bool true)
      ]
  in
  let oc = open_out "BENCH_e16.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sc_obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "machine-readable results written to BENCH_e16.json\n"

(* ------------------------------------------------------------------ *)
(* E17: separate compilation — per-module pipelines + macro assembly   *)
(* ------------------------------------------------------------------ *)

let e17 () =
  section "E17: separate compilation (per-module pipelines, macro assembly)"
    "a multi-module chip compiles each module through its own \
     stage-cached sub-pipeline: editing one module re-runs exactly that \
     module's passes plus assembly, every other module is all-hit, and \
     the modular QoR snapshot is byte-identical cold vs warm and at \
     -j1 vs -j4";
  let module P = Sc_pipeline.Pipeline in
  let fail msg =
    Printf.printf "\nFAIL: %s\n" msg;
    exit 1
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let replace ~sub ~by s =
    let n = String.length sub in
    let rec find i =
      if i + n > String.length s then fail ("e17: no " ^ sub ^ " in source")
      else if String.sub s i n = sub then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
  in
  let src = Sc_core.Designs.system_src in
  (* the edit: one operator inside the mixer module body *)
  let edited = replace ~sub:"y := a ^ b" ~by:"y := a | b" src in
  let compile ~jobs s =
    Sc_par.Pool.set_default_size jobs;
    Sc_obs.Obs.reset ();
    Sc_obs.Obs.enable ();
    P.reset_log ();
    match Sc_core.Compiler.compile_behavior s with
    | Error d -> fail ("e17: " ^ Sc_pipeline.Diag.to_string d)
    | Ok _ ->
      let lg = P.log () in
      Sc_obs.Obs.disable ();
      let qor =
        Sc_metrics.Metrics.qor_string
          (Sc_metrics.Metrics.capture ~design:"system" ())
      in
      (lg, qor)
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "scc-e17-cache" in
  rm_rf dir;
  P.enable_cache ~dir ();
  let (log_cold, qor_cold), cold = wall (fun () -> compile ~jobs:4 src) in
  let (log_warm, qor_warm), warm = wall (fun () -> compile ~jobs:1 src) in
  let (log_edit, qor_edit), edit = wall (fun () -> compile ~jobs:4 edited) in
  P.disable_cache ();
  P.clear_caches ();
  (* a cacheless -j1 rebuild from scratch: pure scheduling determinism *)
  let (_, qor_j1), _ = wall (fun () -> compile ~jobs:1 src) in
  Sc_par.Pool.set_default_size 1;
  Printf.printf "%-16s %-14s %-14s %-14s\n" "pass" "cold (-j4)"
    "warm (-j1)" "mixer edited";
  List.iteri
    (fun i (name, _) ->
      let at lg = P.status_to_string (snd (List.nth lg i)) in
      Printf.printf "%-16s %-14s %-14s %-14s\n" name (at log_cold)
        (at log_warm) (at log_edit))
    log_cold;
  Printf.printf
    "\ntimings: cold %.1f ms; warm %.1f ms (%.0fx); after the mixer edit \
     %.1f ms (%.1fx)\n"
    cold warm
    (cold /. Float.max warm 0.001)
    edit
    (cold /. Float.max edit 0.001);
  let ran lg =
    List.filter_map
      (fun (n, st) -> if st = P.Ran || st = P.Failed then Some n else None)
      lg
  in
  if ran log_warm <> [] then
    fail ("e17: identical input re-ran: " ^ String.concat ", " (ran log_warm));
  let expected_edit =
    [ "mixer:parse"; "mixer:compile"; "mixer:optimize"; "mixer:place"
    ; "mixer:route"; "mixer:drc"; "mixer:emit"; "mixer:measure"
    ; "assemble"; "drc"; "emit"; "measure"
    ]
  in
  if ran log_edit <> expected_edit then
    fail
      ("e17: mixer edit re-ran: "
      ^ String.concat ", " (ran log_edit)
      ^ " (expected " ^ String.concat ", " expected_edit ^ ")");
  if qor_warm <> qor_cold then
    fail "e17: warm -j1 QoR differs from cold -j4 QoR";
  if qor_j1 <> qor_cold then
    fail "e17: cacheless -j1 QoR differs from cold -j4 QoR";
  if qor_edit = qor_cold then
    fail "e17: the mixer edit left the QoR snapshot unchanged";
  Printf.printf
    "\nidentical input: all-stage hit; mixer edit: accum all-hit, \
     mixer's sub-pipeline + assembly recomputed\n";
  Printf.printf
    "QoR snapshots byte-identical cold -j4 / warm -j1 / cacheless -j1\n";
  let round3 t = Sc_obs.Json.Num (Float.round (t *. 1000.) /. 1000.) in
  let statuses lg =
    Sc_obs.Json.Obj
      (List.map
         (fun (n, st) -> (n, Sc_obs.Json.Str (P.status_to_string st)))
         lg)
  in
  let json =
    Sc_obs.Json.Obj
      [ ("schema", Sc_obs.Json.Str "scc-bench")
      ; ("experiment", Sc_obs.Json.Str "e17")
      ; ( "ms"
        , Sc_obs.Json.Obj
            [ ("cold_j4", round3 cold)
            ; ("warm_j1", round3 warm)
            ; ("warm_after_mixer_edit", round3 edit)
            ] )
      ; ("cold", statuses log_cold)
      ; ("warm_identical", statuses log_warm)
      ; ("warm_after_mixer_edit", statuses log_edit)
      ; ("qor_identical", Sc_obs.Json.Bool true)
      ]
  in
  let oc = open_out "BENCH_e17.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sc_obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "machine-readable timings written to BENCH_e17.json\n"

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let run = function
    | "e1" -> e1 ()
    | "e2" -> e2 ()
    | "e3" -> e3 ()
    | "e4" -> e4 ()
    | "e5" -> e5 ()
    | "e6" -> e6 ()
    | "e7" -> e7 ()
    | "e8" -> e8 ()
    | "e9" -> e9 ()
    | "e10" | "profile" -> profile ()
    | "e11" -> e11 ()
    | "e13" -> e13 ()
    | "e14" -> e14 ()
    | "e15" -> e15 ()
    | "e16" -> e16 ()
    | "e17" -> e17 ()
    | "ablate" -> ablate ()
    | "micro" -> micro ()
    | other -> Printf.eprintf "unknown experiment %S\n" other
  in
  match what with
  | "all" ->
    List.iter run
      [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11"
      ; "e13"; "e14"; "e15"; "e16"; "e17"; "ablate"; "micro"
      ]
  | w -> run w
