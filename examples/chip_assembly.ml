(* Parameterised chip assembly (claim C6): one program turns any core
   into a complete bonded chip — pad ring, stubs, overglass openings —
   and the same program scales from a tiny counter to a processor.
   The second half shows the generalized form: several independently
   compiled module layouts packed as macros under one routed channel,
   with the same pad frame around the packed core.

   Run:  dune exec examples/chip_assembly.exe  *)

let assemble_and_report name circuit pads =
  let core = Sc_core.Compiler.layout_of_circuit ~name circuit in
  let a = Sc_chip.Assemble.assemble ~name:(name ^ "_chip") ~core ~pads () in
  let clean = Sc_drc.Checker.is_clean a.Sc_chip.Assemble.chip in
  Printf.printf "%-10s %5d pads %10d core %12d chip  x%-5.2f DRC %s\n" name
    a.Sc_chip.Assemble.pads a.Sc_chip.Assemble.core_area
    a.Sc_chip.Assemble.chip_area a.Sc_chip.Assemble.overhead
    (if clean then "clean" else "VIOLATIONS");
  a

let () =
  Printf.printf "assembling chips around synthesized cores:\n\n";
  let counter =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.counter_src))
      .Sc_synth.Synth.circuit
  in
  let alu =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.alu_src))
      .Sc_synth.Synth.circuit
  in
  let pdp8 =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.pdp8_src))
      .Sc_synth.Synth.circuit
  in
  let _ = assemble_and_report "counter" counter 12 in
  let _ = assemble_and_report "alu4" alu 12 in
  let chip = assemble_and_report "pdp8" pdp8 16 in
  (* the full chip as manufacturing data *)
  let path = Filename.temp_file "pdp8_chip" ".cif" in
  Sc_cif.Emit.write path chip.Sc_chip.Assemble.chip;
  Printf.printf "\nPDP-8 chip artwork written to %s\n" path;
  (* the same parameterised program, swept (a preview of experiment E6) *)
  Printf.printf "\npad-count sweep on the alu core:\n";
  List.iter
    (fun pads ->
      let core = Sc_core.Compiler.layout_of_circuit ~name:"alu4" alu in
      let a = Sc_chip.Assemble.assemble ~name:"alu_chip" ~core ~pads () in
      Printf.printf "  %2d pads -> chip %d sq lambda (x%.2f)\n" pads
        a.Sc_chip.Assemble.chip_area a.Sc_chip.Assemble.overhead)
    [ 4; 8; 16; 24; 32 ];
  (* the generalized assembly: the same pad frame, but the core is a
     row of macros — separately compiled module layouts wrapped with
     interface pin stubs — under one routed inter-macro channel.  The
     modular driver does all of this from a chip-block source. *)
  Printf.printf "\nmacro assembly (separate compilation of %s):\n" "system";
  (match Sc_core.Compiler.compile_behavior Sc_core.Designs.system_src with
  | Error d ->
    Printf.printf "  modular compile failed: %s\n"
      (Sc_pipeline.Diag.to_string d)
  | Ok (c, circuit) ->
    let s = Sc_netlist.Circuit.stats circuit in
    Printf.printf
      "  chip %s: %d sq lambda, %d transistors, %d gates + %d FFs, DRC %s\n"
      c.Sc_core.Compiler.layout.Sc_layout.Cell.name c.Sc_core.Compiler.area
      c.Sc_core.Compiler.transistors s.Sc_netlist.Circuit.gate_total
      s.Sc_netlist.Circuit.flipflops
      (if c.Sc_core.Compiler.drc_violations = 0 then "clean"
       else string_of_int c.Sc_core.Compiler.drc_violations ^ " violations"));
  (* the raw pack API, for cores that never came from the pipeline *)
  let block name w h =
    Sc_layout.Cell.make ~name
      [ Sc_layout.Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 0 w h) ]
  in
  let packed =
    Sc_chip.Assemble.pack ~name:"two_ip_blocks"
      ~macros:
        [ { Sc_chip.Assemble.mi_name = "u0"; mi_pins = [ "a"; "y" ]
          ; mi_cell = block "ip_a" 80 60
          }
        ; { Sc_chip.Assemble.mi_name = "u1"; mi_pins = [ "p"; "q" ]
          ; mi_cell = block "ip_b" 120 90
          }
        ]
      ~chip_ports:[ "in0"; "out0" ]
      ~nets:
        [ { Sc_chip.Assemble.net_name = "in0"
          ; ends = [ Sc_chip.Assemble.Chip "in0"; Pin ("u0", "a") ]
          }
        ; { Sc_chip.Assemble.net_name = "mid"
          ; ends = [ Sc_chip.Assemble.Pin ("u0", "y"); Pin ("u1", "p") ]
          }
        ; { Sc_chip.Assemble.net_name = "out0"
          ; ends = [ Sc_chip.Assemble.Pin ("u1", "q"); Chip "out0" ]
          }
        ]
      ()
  in
  Printf.printf "\nraw pack of two opaque IP blocks:\n  %s\n"
    (Format.asprintf "%a" Sc_chip.Assemble.pp_packed packed)
