(* Quickstart: the paper's headline in twenty lines.

   A textual description of a design — a parameterised array of shift
   stages built from standard cells — is compiled to layout data (CIF),
   design-rule checked, and measured.

   Run:  dune exec examples/quickstart.exe  *)

let source =
  {|
-- one shift stage: a D flip-flop feeding an inverter
cell stage() {
  inst dff() at (0, 0);
  inst inv() at (width(dff()), 0);
}

-- a register bank: n stages side by side, m rows stacked with a
-- routing gap, rails abutting within each row
cell bank(n, m) {
  let w = width(stage());
  for j = 0 to m-1 {
    for i = 0 to n-1 {
      inst stage() at (i*w, j*60);
    }
  }
}

cell main(n, m) { inst bank(n, m) at (0, 0); }
|}

let () =
  match Sc_core.Compiler.compile_layout ~args:[ 4; 3 ] source with
  | Error d ->
    prerr_endline ("compile error: " ^ Sc_pipeline.Diag.to_string d);
    exit 1
  | Ok compiled ->
    let cell = compiled.Sc_core.Compiler.layout in
    Printf.printf "compiled %s: %d x %d lambda, %d transistors\n"
      cell.Sc_layout.Cell.name (Sc_layout.Cell.width cell)
      (Sc_layout.Cell.height cell) compiled.Sc_core.Compiler.transistors;
    Printf.printf "DRC: %s\n"
      (if compiled.Sc_core.Compiler.drc_violations = 0 then "clean"
       else string_of_int compiled.Sc_core.Compiler.drc_violations ^ " violations");
    (* the manufacturing data *)
    let path = Filename.temp_file "quickstart" ".cif" in
    let oc = open_out path in
    output_string oc compiled.Sc_core.Compiler.cif;
    close_out oc;
    Printf.printf "CIF written to %s (%d bytes)\n" path
      (String.length compiled.Sc_core.Compiler.cif);
    (* and it reads back identically *)
    Printf.printf "CIF roundtrip exact: %b\n" (Sc_cif.Elaborate.roundtrip_ok cell);
    (* colour artwork for human eyes *)
    let svg = Filename.temp_file "quickstart" ".svg" in
    Sc_layout.Render.write_svg svg cell;
    Printf.printf "artwork rendered to %s\n" svg
