// A 12-bit loadable up-counter with enable and terminal count.
//
// This is the Verilog-frontend reference design: its QoR snapshot is
// committed under bench/baselines/counter12.json and diffed by the CI
// quality gate (see docs/VERILOG.md for the supported subset).
//
//   rst   async-reset idiom, realized with synchronous priority
//   load  synchronous parallel load of d
//   en    count enable (load wins over en)
//   tc    terminal count, high at 12'hfff

module counter12 (
    input  wire        clk,
    input  wire        rst,
    input  wire        en,
    input  wire        load,
    input  wire [11:0] d,
    output reg  [11:0] q,
    output wire        tc
);

  assign tc = q == 12'hfff;

  always @(posedge clk or posedge rst) begin
    if (rst) q <= 12'd0;
    else if (load) q <= d;
    else if (en) q <= q + 12'd1;
  end

endmodule
